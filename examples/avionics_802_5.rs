//! Avionics control network on a low-speed ring — the regime where the
//! paper recommends the **priority driven protocol** (§7: "at low
//! transmission speeds (1–10 Mbps) ... the priority driven protocol is
//! better suited").
//!
//! A six-station 1 Mbps ring carries fast control loops (10–80 ms) and
//! slower sensor/log traffic (160–320 ms). The example shows that:
//!
//! * both IEEE 802.5 variants guarantee the set (Theorem 4.1);
//! * the FDDI timed token protocol **cannot** — the 75-bit station
//!   latencies and per-visit frame overheads swamp the short token
//!   rotations at 1 Mbps;
//! * the frame-level simulator confirms both verdicts, including a
//!   pressure test with 30 % asynchronous background load.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example avionics_802_5
//! ```

use ringrt::prelude::*;
use ringrt::workload::scenarios;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let set = scenarios::avionics_control();
    let bw = Bandwidth::from_mbps(1.0);
    println!("avionics control set ({} streams):", set.len());
    for (i, s) in set.iter().enumerate() {
        println!("  S{}: {}", i + 1, s);
    }
    println!("raw utilization at {bw}: {:.3}\n", set.utilization(bw));

    // --- Analysis: 802.5 guarantees it ---------------------------------
    let ring_pdp = RingConfig::ieee_802_5(set.len(), bw);
    let frame = FrameFormat::paper_default();
    let pdp = PdpAnalyzer::new(ring_pdp, frame, PdpVariant::Standard);
    let pdp_report = pdp.analyze(&set);
    print!("{pdp_report}");
    assert!(
        pdp_report.schedulable,
        "802.5 must guarantee the avionics set"
    );

    // --- Analysis: FDDI cannot ----------------------------------------
    let ring_ttp = RingConfig::fddi(set.len(), bw);
    let ttp = TtpAnalyzer::with_defaults(ring_ttp);
    let ttp_report = ttp.analyze(&set);
    print!("{ttp_report}");
    assert!(
        !ttp_report.schedulable,
        "FDDI at 1 Mbps must fail on this set (Θ' = {})",
        ttp_report.theta_prime
    );

    // --- Simulation: 802.5 under asynchronous pressure -----------------
    let config = SimConfig::new(ring_pdp, Seconds::new(2.0))
        .with_phasing(Phasing::Synchronized)
        .with_async_load(0.3);
    let sim = PdpSimulator::new(&set, config, frame, PdpVariant::Standard).run();
    println!("--- simulated 2 s of 802.5 ring time, 30 % async background ---");
    print!("{sim}");
    assert!(
        sim.all_deadlines_met(),
        "Theorem 4.1 guarantee violated in simulation"
    );

    // --- How much headroom does each protocol leave? -------------------
    use ringrt::analysis::SchedulabilityTest as _;
    use ringrt::breakdown::SaturationSearch;
    let search = SaturationSearch::default();
    let pdp_margin = search.saturate(&pdp, &set, bw).expect("schedulable");
    println!(
        "\n802.5 headroom: the workload can grow ×{:.2} (to utilization {:.3}) before Theorem 4.1 breaks",
        pdp_margin.scale, pdp_margin.utilization
    );
    match search.saturate(&ttp, &set, bw) {
        Some(sat) => println!(
            "FDDI would need the workload shrunk to ×{:.2} (utilization {:.3}) to become guaranteed",
            sat.scale, sat.utilization
        ),
        None => println!("FDDI cannot guarantee this set at any scale at 1 Mbps"),
    }
    let _ = ttp.is_schedulable(&set);
    Ok(())
}
