//! File-descriptor limit introspection and best-effort raising.
//!
//! Holding tens of thousands of connections needs tens of thousands of
//! fds, and the default soft `RLIMIT_NOFILE` is often 1024 while the hard
//! limit is much higher. [`raise_nofile_to_hard`] lifts the soft limit to
//! the hard limit (the most an unprivileged process may do) so the
//! connection-sweep benchmark and the server can scale to what the host
//! actually allows — and callers size their targets from the returned
//! value instead of failing at accept time.

use crate::sys;
use std::io;

/// Returns `(soft, hard)` `RLIMIT_NOFILE` for this process.
pub fn nofile_limits() -> io::Result<(u64, u64)> {
    sys::nofile_limits()
}

/// Raises the soft fd limit to the hard limit, returning the soft limit
/// now in effect. Best effort: if the raise is refused, the current soft
/// limit is returned instead of an error.
pub fn raise_nofile_to_hard() -> io::Result<u64> {
    let (soft, hard) = sys::nofile_limits()?;
    if soft >= hard {
        return Ok(soft);
    }
    match sys::set_nofile_soft(hard) {
        Ok(()) => Ok(hard),
        Err(_) => Ok(soft),
    }
}

#[cfg(all(test, target_os = "linux"))]
mod tests {
    use super::*;

    #[test]
    fn limits_are_sane_and_raise_is_monotonic() {
        let (soft, hard) = nofile_limits().unwrap();
        assert!(soft > 0 && hard >= soft);
        let achieved = raise_nofile_to_hard().unwrap();
        assert!(achieved >= soft);
        let (soft_after, hard_after) = nofile_limits().unwrap();
        assert_eq!(soft_after, achieved);
        assert_eq!(hard_after, hard);
    }
}
