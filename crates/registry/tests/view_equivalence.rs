//! Property harness: analyzer results computed through the [`SetView`]
//! trait over a (churned) columnar [`StreamStore`] must be bit-identical
//! to the legacy [`MessageSet`] path.
//!
//! The engine's `debug_assert!`s check the same thing on every live
//! admission, but only in debug builds and only along the paths a run
//! happens to take; this sweep drives both analyzers over randomly
//! churned stores — admits interleaved with removals, so internal
//! sequence numbers are scattered and rebuilds fire — and compares
//! `(schedulable, evaluations)` for **every** PDP starting rank and the
//! negotiated TTRT plus each Theorem 5.1 term bit-for-bit.

use proptest::prelude::*;
use ringrt_core::pdp::{PdpAnalyzer, PdpVariant};
use ringrt_core::ttp::TtpAnalyzer;
use ringrt_core::SetView;
use ringrt_model::{FrameFormat, MessageSet, RingConfig, SyncStream};
use ringrt_store::StreamStore;
use ringrt_units::{Bandwidth, Bits, Seconds};

fn stream(period_sel: u64, bits_sel: u64) -> SyncStream {
    // Collision-heavy periods (DM ties) and a load spread that produces
    // both schedulable and unschedulable sets.
    let period = Seconds::from_millis(15.0 * (1 + period_sel % 6) as f64);
    let s = SyncStream::new(period, Bits::new(20_000 + 60_000 * (bits_sel % 8)));
    if period_sel.is_multiple_of(3) {
        s.with_relative_deadline(Seconds::new(period.as_secs_f64() * 0.75))
    } else {
        s
    }
}

/// Builds a store churned by the op list (admit / remove), so live rows
/// and sequence numbers are scattered rather than dense.
fn churned_store(ops: &[(u8, u64, u64)]) -> StreamStore {
    let mut store = StreamStore::new();
    for &(kind, name_sel, bits_sel) in ops {
        let name = format!("s{name_sel}");
        if kind == 0 {
            store.remove(&name);
        } else if !store.contains(&name) {
            store.admit(&name, stream(name_sel, bits_sel));
        }
    }
    store
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// PDP: `check_from_rank_view` over the store equals `check_from_rank`
    /// over the materialized set for every starting rank and both paper
    /// variants.
    #[test]
    fn pdp_view_matches_message_set_path(
        ops in prop::collection::vec((0u8..4, 0u64..10, 0u64..8), 1..30),
    ) {
        let store = churned_store(&ops);
        prop_assume!(!store.is_empty());
        let set: MessageSet = store.message_set().unwrap().unwrap();
        for variant in [PdpVariant::Standard, PdpVariant::Modified] {
            let analyzer = PdpAnalyzer::new(
                RingConfig::ieee_802_5(store.len(), Bandwidth::from_mbps(16.0)),
                FrameFormat::paper_default(),
                variant,
            );
            for rank in 0..store.len() {
                let via_view = analyzer.check_from_rank_view(&store, rank);
                let via_set = analyzer.check_from_rank(&set, rank);
                prop_assert_eq!(
                    (via_view.schedulable, via_view.evaluations),
                    (via_set.schedulable, via_set.evaluations),
                    "PDP {:?} diverged at rank {}", variant, rank
                );
            }
        }
    }

    /// TTP: the negotiated TTRT and every Theorem 5.1 term computed through
    /// the view equal the `MessageSet` path bit-for-bit.
    #[test]
    fn ttp_view_matches_message_set_path(
        ops in prop::collection::vec((0u8..4, 0u64..10, 0u64..8), 1..30),
    ) {
        let store = churned_store(&ops);
        prop_assume!(!store.is_empty());
        let set: MessageSet = store.message_set().unwrap().unwrap();
        let analyzer = TtpAnalyzer::with_defaults(
            RingConfig::fddi(store.len(), Bandwidth::from_mbps(100.0)),
        );
        let via_view = analyzer.ttrt_for_view(&store);
        let via_set = analyzer.ttrt_for(&set);
        prop_assert_eq!(
            via_view.as_secs_f64().to_bits(),
            via_set.as_secs_f64().to_bits(),
            "negotiated TTRT diverged"
        );
        // Terms fold over the same stream order: the view's station order
        // is the set's index order by construction.
        let view_streams: Vec<SyncStream> = store.stations().collect();
        for (i, s) in set.iter().enumerate() {
            let a = analyzer.stream_term(&view_streams[i], via_view);
            let b = analyzer.stream_term(s, via_set);
            prop_assert_eq!(
                a.map(|t| t.as_secs_f64().to_bits()),
                b.map(|t| t.as_secs_f64().to_bits()),
                "term {} diverged", i
            );
        }
    }
}
