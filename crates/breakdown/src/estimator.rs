//! The Monte-Carlo average-breakdown-utilization estimator.

use core::fmt;

use rand::Rng;

use ringrt_core::SchedulabilityTest;
use ringrt_units::Bandwidth;
use ringrt_workload::MessageSetGenerator;

use crate::{SampleStats, SaturationSearch};

/// Estimates a protocol's average breakdown utilization over a message-set
/// population (paper §6.1).
///
/// Each sample draws a random set, scales it to its saturation boundary,
/// and records the boundary utilization; the estimate is the sample mean
/// with a 95 % confidence interval.
///
/// # Examples
///
/// ```
/// use rand::SeedableRng;
/// use ringrt_breakdown::BreakdownEstimator;
/// use ringrt_core::pdp::{PdpAnalyzer, PdpVariant};
/// use ringrt_model::{FrameFormat, RingConfig};
/// use ringrt_units::Bandwidth;
/// use ringrt_workload::MessageSetGenerator;
///
/// let ring = RingConfig::ieee_802_5(10, Bandwidth::from_mbps(4.0));
/// let analyzer = PdpAnalyzer::new(ring, FrameFormat::paper_default(), PdpVariant::Modified);
/// let est = BreakdownEstimator::new(MessageSetGenerator::paper_population(10), 15)
///     .estimate(&analyzer, ring.bandwidth(), &mut rand::rngs::StdRng::seed_from_u64(1));
/// assert!(est.mean > 0.0 && est.mean < 1.0);
/// assert_eq!(est.stats.count(), 15);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct BreakdownEstimator {
    generator: MessageSetGenerator,
    samples: usize,
    search: SaturationSearch,
}

impl BreakdownEstimator {
    /// Creates an estimator taking `samples` Monte-Carlo samples from
    /// `generator` with the default saturation-search tolerance.
    ///
    /// # Panics
    ///
    /// Panics if `samples` is zero.
    #[must_use]
    pub fn new(generator: MessageSetGenerator, samples: usize) -> Self {
        assert!(samples > 0, "need at least one Monte-Carlo sample");
        BreakdownEstimator {
            generator,
            samples,
            search: SaturationSearch::default(),
        }
    }

    /// Returns a copy with a custom saturation search.
    #[must_use]
    pub fn with_search(mut self, search: SaturationSearch) -> Self {
        self.search = search;
        self
    }

    /// The number of Monte-Carlo samples per estimate.
    #[must_use]
    pub fn samples(&self) -> usize {
        self.samples
    }

    /// The underlying population generator.
    #[must_use]
    pub fn generator(&self) -> &MessageSetGenerator {
        &self.generator
    }

    /// Runs the estimation for one protocol configuration.
    ///
    /// `bandwidth` is used to express sampled boundary utilizations (it
    /// should match the analyzer's ring bandwidth). Sets for which no
    /// positive load is schedulable contribute a **zero** utilization
    /// sample — the protocol genuinely cannot guarantee that population
    /// member — and are additionally counted in
    /// [`BreakdownEstimate::infeasible_sets`].
    pub fn estimate<T, R>(&self, test: &T, bandwidth: Bandwidth, rng: &mut R) -> BreakdownEstimate
    where
        T: SchedulabilityTest + ?Sized,
        R: Rng + ?Sized,
    {
        let mut stats = SampleStats::new();
        let mut infeasible = 0usize;
        for _ in 0..self.samples {
            let set = self.generator.generate(rng);
            match self.search.saturate(test, &set, bandwidth) {
                Some(sat) => stats.push(sat.utilization),
                None => {
                    infeasible += 1;
                    stats.push(0.0);
                }
            }
        }
        BreakdownEstimate {
            protocol: test.protocol_name(),
            mean: stats.mean(),
            ci95: stats.ci95_half_width(),
            infeasible_sets: infeasible,
            stats,
        }
    }

    /// Like [`BreakdownEstimator::estimate`], but scatters the samples over
    /// `threads` worker threads.
    ///
    /// Deterministic regardless of thread count or interleaving: sample `k`
    /// always uses its own RNG stream derived from `seed` and `k`, and the
    /// partial statistics are merged in sample order. The result therefore
    /// differs from the sequential [`BreakdownEstimator::estimate`] (which
    /// draws all samples from one RNG stream) but is reproducible from
    /// `seed` alone.
    ///
    /// # Panics
    ///
    /// Panics if `threads` is zero.
    pub fn estimate_parallel<T>(
        &self,
        test: &T,
        bandwidth: Bandwidth,
        seed: u64,
        threads: usize,
    ) -> BreakdownEstimate
    where
        T: SchedulabilityTest + Sync + ?Sized,
    {
        use rand::rngs::StdRng;
        use rand::SeedableRng;

        assert!(threads > 0, "need at least one worker thread");
        let threads = threads.min(self.samples);

        let sample_seed = |k: usize| {
            seed ^ (k as u64)
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .wrapping_add(1)
        };
        let run_sample = |k: usize| -> (f64, bool) {
            let mut rng = StdRng::seed_from_u64(sample_seed(k));
            let set = self.generator.generate(&mut rng);
            match self.search.saturate(test, &set, bandwidth) {
                Some(sat) => (sat.utilization, false),
                None => (0.0, true),
            }
        };

        // Static block partition: worker w takes samples [lo, hi).
        let mut results: Vec<Vec<(f64, bool)>> = Vec::new();
        std::thread::scope(|scope| {
            let mut handles = Vec::new();
            let per = self.samples.div_ceil(threads);
            for w in 0..threads {
                let lo = w * per;
                let hi = ((w + 1) * per).min(self.samples);
                let run = &run_sample;
                handles.push(scope.spawn(move || (lo..hi).map(run).collect::<Vec<_>>()));
            }
            for h in handles {
                results.push(h.join().expect("estimator worker panicked"));
            }
        });

        let mut stats = SampleStats::new();
        let mut infeasible = 0usize;
        for (u, inf) in results.into_iter().flatten() {
            stats.push(u);
            if inf {
                infeasible += 1;
            }
        }
        BreakdownEstimate {
            protocol: test.protocol_name(),
            mean: stats.mean(),
            ci95: stats.ci95_half_width(),
            infeasible_sets: infeasible,
            stats,
        }
    }
}

/// The result of one average-breakdown-utilization estimation.
#[derive(Debug, Clone, PartialEq)]
pub struct BreakdownEstimate {
    /// Name of the protocol configuration that was estimated.
    pub protocol: &'static str,
    /// Estimated average breakdown utilization.
    pub mean: f64,
    /// Half-width of the 95 % confidence interval.
    pub ci95: f64,
    /// Number of sampled sets for which no positive load was schedulable
    /// (each contributed a zero sample).
    pub infeasible_sets: usize,
    /// Full sample statistics (count, variance, extremes).
    pub stats: SampleStats,
}

impl fmt::Display for BreakdownEstimate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: ABU = {:.4} ± {:.4} ({} samples",
            self.protocol,
            self.mean,
            self.ci95,
            self.stats.count()
        )?;
        if self.infeasible_sets > 0 {
            write!(f, ", {} infeasible", self.infeasible_sets)?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use ringrt_core::pdp::{PdpAnalyzer, PdpVariant};
    use ringrt_core::ttp::{TtpAnalyzer, TtrtPolicy};
    use ringrt_model::{FrameFormat, RingConfig};
    use ringrt_units::Seconds;

    fn quick_estimator(n: usize) -> BreakdownEstimator {
        BreakdownEstimator::new(MessageSetGenerator::paper_population(n), 8)
            .with_search(SaturationSearch::with_tolerance(1e-3))
    }

    #[test]
    fn ttp_estimate_in_sane_band_at_100mbps() {
        let ring = RingConfig::fddi(20, Bandwidth::from_mbps(100.0));
        let a = TtpAnalyzer::with_defaults(ring);
        let est = quick_estimator(20).estimate(&a, ring.bandwidth(), &mut StdRng::seed_from_u64(2));
        assert!(est.mean > 0.4 && est.mean < 1.0, "ABU {est}");
        assert_eq!(est.infeasible_sets, 0);
        assert_eq!(est.protocol, "FDDI");
    }

    #[test]
    fn pdp_estimate_in_sane_band_at_4mbps() {
        let ring = RingConfig::ieee_802_5(20, Bandwidth::from_mbps(4.0));
        let a = PdpAnalyzer::new(ring, FrameFormat::paper_default(), PdpVariant::Modified);
        let est = quick_estimator(20).estimate(&a, ring.bandwidth(), &mut StdRng::seed_from_u64(3));
        assert!(est.mean > 0.2 && est.mean < 1.0, "ABU {est}");
    }

    #[test]
    fn reproducible_with_same_seed() {
        let ring = RingConfig::fddi(10, Bandwidth::from_mbps(100.0));
        let a = TtpAnalyzer::with_defaults(ring);
        let e = quick_estimator(10);
        let x = e.estimate(&a, ring.bandwidth(), &mut StdRng::seed_from_u64(7));
        let y = e.estimate(&a, ring.bandwidth(), &mut StdRng::seed_from_u64(7));
        assert_eq!(x, y);
    }

    #[test]
    fn infeasible_population_scores_zero() {
        // A TTRT fixed way above P_min/2 makes every set infeasible.
        let ring = RingConfig::fddi(10, Bandwidth::from_mbps(100.0));
        let a = TtpAnalyzer::with_defaults(ring)
            .with_ttrt_policy(TtrtPolicy::Fixed(Seconds::from_millis(500.0)));
        let est = quick_estimator(10).estimate(&a, ring.bandwidth(), &mut StdRng::seed_from_u64(9));
        assert_eq!(est.infeasible_sets, 8);
        assert_eq!(est.mean, 0.0);
        assert!(est.to_string().contains("infeasible"));
    }

    #[test]
    fn parallel_matches_itself_across_thread_counts() {
        let ring = RingConfig::fddi(10, Bandwidth::from_mbps(100.0));
        let a = TtpAnalyzer::with_defaults(ring);
        let e = BreakdownEstimator::new(MessageSetGenerator::paper_population(10), 9)
            .with_search(SaturationSearch::with_tolerance(1e-3));
        let one = e.estimate_parallel(&a, ring.bandwidth(), 42, 1);
        let four = e.estimate_parallel(&a, ring.bandwidth(), 42, 4);
        let many = e.estimate_parallel(&a, ring.bandwidth(), 42, 16);
        assert_eq!(one.stats.count(), 9);
        assert!((one.mean - four.mean).abs() < 1e-12);
        assert!((one.mean - many.mean).abs() < 1e-12);
        // A different seed gives a different (but valid) estimate.
        let other = e.estimate_parallel(&a, ring.bandwidth(), 43, 4);
        assert_ne!(one.mean, other.mean);
    }

    #[test]
    fn parallel_agrees_with_sequential_statistically() {
        let ring = RingConfig::fddi(10, Bandwidth::from_mbps(100.0));
        let a = TtpAnalyzer::with_defaults(ring);
        let e = BreakdownEstimator::new(MessageSetGenerator::paper_population(10), 16)
            .with_search(SaturationSearch::with_tolerance(1e-3));
        let seq = e.estimate(&a, ring.bandwidth(), &mut StdRng::seed_from_u64(7));
        let par = e.estimate_parallel(&a, ring.bandwidth(), 7, 4);
        // Different RNG streams, same population: means land close.
        assert!(
            (seq.mean - par.mean).abs() < 0.15,
            "{} vs {}",
            seq.mean,
            par.mean
        );
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_threads_rejected() {
        let ring = RingConfig::fddi(4, Bandwidth::from_mbps(100.0));
        let a = TtpAnalyzer::with_defaults(ring);
        let _ = quick_estimator(4).estimate_parallel(&a, ring.bandwidth(), 1, 0);
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn zero_samples_rejected() {
        let _ = BreakdownEstimator::new(MessageSetGenerator::paper_population(5), 0);
    }

    #[test]
    fn accessors() {
        let e = quick_estimator(5);
        assert_eq!(e.samples(), 8);
        assert_eq!(e.generator().stations(), 5);
    }
}
