//! A small deterministic discrete-event simulation engine.
//!
//! The `ringrt-sim` token-ring simulator needs three things from its
//! substrate, all provided here:
//!
//! * an [`EventQueue`] over integer [`SimTime`](ringrt_units::SimTime)
//!   with **deterministic tie-breaking** (same-time events pop in insertion
//!   order), so simulations are exactly reproducible;
//! * a monotone simulation clock enforced by the queue (events cannot be
//!   scheduled in the past);
//! * measurement utilities ([`stats`]) — counters, time-weighted gauges and
//!   simple tallies — for deadline misses, rotation times, throughput.
//!
//! The engine is deliberately single-threaded: determinism is worth more
//! than parallelism at the event rates involved here (one token ring pops
//! a few million events per simulated second at most).
//!
//! # Examples
//!
//! A two-event ping-pong:
//!
//! ```
//! use ringrt_des::EventQueue;
//! use ringrt_units::{SimDuration, SimTime};
//!
//! #[derive(Debug, PartialEq)]
//! enum Ev { Ping, Pong }
//!
//! let mut q = EventQueue::new();
//! q.schedule_at(SimTime::ZERO, Ev::Ping);
//! let mut log = Vec::new();
//! while let Some((t, ev)) = q.pop() {
//!     match ev {
//!         Ev::Ping => {
//!             log.push((t, "ping"));
//!             if t < SimTime::from_picos(2_000) {
//!                 q.schedule_after(SimDuration::from_picos(1_000), Ev::Pong);
//!             }
//!         }
//!         Ev::Pong => {
//!             log.push((t, "pong"));
//!             q.schedule_after(SimDuration::from_picos(1_000), Ev::Ping);
//!         }
//!     }
//! }
//! assert_eq!(log.len(), 3); // ping@0, pong@1ns, ping@2ns
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod stats;

mod queue;

pub use queue::EventQueue;
