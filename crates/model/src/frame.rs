//! Frame geometry for the priority-driven protocol (paper §4.2).

use core::fmt;

use ringrt_units::{Bandwidth, Bits, Bytes, Seconds};

use crate::ModelError;

/// The fixed frame format used by the priority-driven protocol.
///
/// Messages are divided into frames of `payload` information bits
/// (`F_info^b`) each carrying `overhead` extra bits (`F_ovhd^b`) of
/// header/trailer. The paper's evaluation uses 64-byte payloads and a
/// 112-bit overhead.
///
/// # Examples
///
/// ```
/// use ringrt_model::FrameFormat;
/// use ringrt_units::{Bandwidth, Bits};
///
/// let f = FrameFormat::paper_default();
/// assert_eq!(f.payload(), Bits::new(512));
/// assert_eq!(f.overhead(), Bits::new(112));
/// assert_eq!(f.total(), Bits::new(624));
///
/// // A 1300-bit message splits into K = 3 frames, L = 2 of them full.
/// let split = f.split(Bits::new(1300));
/// assert_eq!((split.full_frames, split.total_frames), (2, 3));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FrameFormat {
    payload: Bits,
    overhead: Bits,
}

impl FrameFormat {
    /// Creates a frame format with `payload` information bits and
    /// `overhead` header/trailer bits per frame.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidFrame`] if the payload is zero bits.
    pub fn new(payload: Bits, overhead: Bits) -> Result<Self, ModelError> {
        if payload.is_zero() {
            return Err(ModelError::InvalidFrame {
                parameter: "payload",
                reason: "frame payload must be at least one bit".into(),
            });
        }
        Ok(FrameFormat { payload, overhead })
    }

    /// The paper's evaluation format: 64-byte payload, 112-bit overhead.
    #[must_use]
    pub fn paper_default() -> Self {
        FrameFormat {
            payload: Bytes::new(64).to_bits(),
            overhead: Bits::new(112),
        }
    }

    /// Same 112-bit overhead with a different payload size (used by the
    /// frame-size trade-off experiment).
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidFrame`] if the payload is zero bits.
    pub fn with_payload(payload: Bits) -> Result<Self, ModelError> {
        FrameFormat::new(payload, Bits::new(112))
    }

    /// Information bits per frame, `F_info^b`.
    #[must_use]
    pub fn payload(&self) -> Bits {
        self.payload
    }

    /// Overhead bits per frame, `F_ovhd^b`.
    #[must_use]
    pub fn overhead(&self) -> Bits {
        self.overhead
    }

    /// Total frame length `F^b = F_info^b + F_ovhd^b`.
    #[must_use]
    pub fn total(&self) -> Bits {
        self.payload + self.overhead
    }

    /// Time to transmit one full frame, `F = F^b / BW`.
    #[must_use]
    pub fn frame_time(&self, bandwidth: Bandwidth) -> Seconds {
        bandwidth.transmission_time(self.total())
    }

    /// Time to transmit one frame's payload only, `F_info`.
    #[must_use]
    pub fn payload_time(&self, bandwidth: Bandwidth) -> Seconds {
        bandwidth.transmission_time(self.payload)
    }

    /// Time to transmit one frame's overhead only, `F_ovhd`.
    #[must_use]
    pub fn overhead_time(&self, bandwidth: Bandwidth) -> Seconds {
        bandwidth.transmission_time(self.overhead)
    }

    /// Splits a message of `message_bits` payload bits into frames,
    /// computing the paper's `L_i` and `K_i`.
    #[must_use]
    pub fn split(&self, message_bits: Bits) -> FrameSplit {
        let full_frames = message_bits.div_floor(self.payload);
        let total_frames = message_bits.div_ceil(self.payload);
        let last_payload = if total_frames > full_frames {
            message_bits - self.payload * full_frames
        } else {
            // Message is an exact multiple: the last frame is full.
            if total_frames > 0 {
                self.payload
            } else {
                Bits::ZERO
            }
        };
        FrameSplit {
            full_frames,
            total_frames,
            last_payload,
        }
    }

    /// Total bits on the wire for a `message_bits` message, including the
    /// per-frame overheads: `C^b + K·F_ovhd^b`.
    #[must_use]
    pub fn wire_bits(&self, message_bits: Bits) -> Bits {
        message_bits + self.overhead * self.split(message_bits).total_frames
    }
}

impl fmt::Display for FrameFormat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "frame({} payload + {} overhead)",
            self.payload, self.overhead
        )
    }
}

/// The decomposition of a message into frames.
///
/// * `full_frames` — the paper's `L_i`: frames carrying a full payload;
/// * `total_frames` — the paper's `K_i`: total frames (`L_i` or `L_i + 1`);
/// * `last_payload` — payload bits in the final frame (equal to the frame
///   payload when the message divides evenly).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FrameSplit {
    /// Number of maximum-length frames, `L_i`.
    pub full_frames: u64,
    /// Total number of frames, `K_i`.
    pub total_frames: u64,
    /// Payload bits in the last frame.
    pub last_payload: Bits,
}

impl FrameSplit {
    /// `true` when the message divides evenly into full frames
    /// (`K_i = L_i`).
    #[must_use]
    pub fn is_exact(&self) -> bool {
        self.full_frames == self.total_frames
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_dimensions() {
        let f = FrameFormat::paper_default();
        assert_eq!(f.total(), Bits::new(624));
        let bw = Bandwidth::from_mbps(1.0);
        assert!((f.frame_time(bw).as_micros() - 624.0).abs() < 1e-9);
        assert!((f.payload_time(bw).as_micros() - 512.0).abs() < 1e-9);
        assert!((f.overhead_time(bw).as_micros() - 112.0).abs() < 1e-9);
    }

    #[test]
    fn split_partial_last_frame() {
        let f = FrameFormat::paper_default();
        let s = f.split(Bits::new(1300));
        assert_eq!(s.full_frames, 2);
        assert_eq!(s.total_frames, 3);
        assert_eq!(s.last_payload, Bits::new(1300 - 1024));
        assert!(!s.is_exact());
    }

    #[test]
    fn split_exact_multiple() {
        let f = FrameFormat::paper_default();
        let s = f.split(Bits::new(1024));
        assert_eq!(s.full_frames, 2);
        assert_eq!(s.total_frames, 2);
        assert_eq!(s.last_payload, Bits::new(512));
        assert!(s.is_exact());
    }

    #[test]
    fn split_sub_frame_message() {
        let f = FrameFormat::paper_default();
        let s = f.split(Bits::new(10));
        assert_eq!(s.full_frames, 0);
        assert_eq!(s.total_frames, 1);
        assert_eq!(s.last_payload, Bits::new(10));
    }

    #[test]
    fn split_zero_message() {
        let f = FrameFormat::paper_default();
        let s = f.split(Bits::ZERO);
        assert_eq!(s.total_frames, 0);
        assert_eq!(s.last_payload, Bits::ZERO);
        assert!(s.is_exact());
    }

    #[test]
    fn wire_bits_accounts_per_frame_overhead() {
        let f = FrameFormat::paper_default();
        // 3 frames → 3 × 112 bits of overhead.
        assert_eq!(f.wire_bits(Bits::new(1300)), Bits::new(1300 + 3 * 112));
        assert_eq!(f.wire_bits(Bits::new(512)), Bits::new(512 + 112));
    }

    #[test]
    fn rejects_zero_payload() {
        assert!(matches!(
            FrameFormat::new(Bits::ZERO, Bits::new(112)),
            Err(ModelError::InvalidFrame { .. })
        ));
    }

    #[test]
    fn with_payload_keeps_paper_overhead() {
        let f = FrameFormat::with_payload(Bits::new(4096)).unwrap();
        assert_eq!(f.overhead(), Bits::new(112));
        assert_eq!(f.payload(), Bits::new(4096));
    }

    #[test]
    fn display() {
        let f = FrameFormat::paper_default();
        assert!(f.to_string().contains("512"));
        assert!(f.to_string().contains("112"));
    }
}
