//! The TCP server: acceptor, connection front ends, bounded admission
//! queue, worker pool, and graceful shutdown.
//!
//! # Threading model
//!
//! The server offers two connection **front ends** behind one listener
//! and one worker pool ([`Frontend`], `serve --frontend=`):
//!
//! ```text
//! threads: acceptor ──spawns──▶ connection threads ──jobs──▶ queue ──▶ workers
//!                                   │    ▲                               │
//!                                   │    └──────── mpsc reply ◀──────────┘
//!                                   └─ inline: PING / STATS / cache hits
//!
//! event:   acceptor ──injects──▶ event loops (epoll) ──jobs──▶ queue ──▶ workers
//!                                   │    ▲                               │
//!                                   │    └─ completions + waker ◀────────┘
//!                                   └─ inline: PING / STATS / cache hits
//! ```
//!
//! * The **threads** front end gives each connection a blocking reader
//!   thread — simple, but a thread per client caps the population.
//! * The **event** front end (`crate::event`, Linux only) multiplexes all
//!   connections over one or two epoll readiness loops; workers hand
//!   finished replies back through a completion queue and wake the loop
//!   via a pipe. This is the shape that holds 10⁴–10⁵ idle clients.
//! * Either way, cheap requests (PING, STATS, SHUTDOWN, malformed lines,
//!   cache hits) are answered without touching the queue; analysis work
//!   goes through the bounded queue, and a full queue sheds load with an
//!   immediate `BUSY` line — the client is never left hanging.
//! * Both front ends share the accept-time `--max-conns` guard: beyond
//!   the cap a connection gets one `BUSY max_conns=…` line and is closed.
//! * Workers pop jobs; a job that waited past its deadline is answered
//!   `ERR deadline expired` without being executed.
//! * The blocking path enforces [`MAX_LINE_BYTES`] *while reading* and a
//!   read deadline on partially received lines, so a slow-loris client
//!   dribbling bytes forever cannot pin a reader thread or grow its
//!   buffer without bound.
//! * Shutdown (`SHUTDOWN` request or [`ServerHandle::shutdown`]) stops the
//!   acceptor, lets workers **drain** everything already queued, and closes
//!   reader threads at their next poll tick — in-flight requests still get
//!   their answers.

use std::collections::VecDeque;
use std::io::{BufRead, BufReader, ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use ringrt_exec::Pool;
use ringrt_obs::{prom::PromWriter, trace::render_chrome_trace, Measured, Recorder};
use ringrt_registry::{
    AdmissionOutcome, FailpointFs, ReplicatedApply, RingRegistry, RingSpec, RingState,
    ShipSubscription, StoreOptions, DEFAULT_SEGMENT_BYTES,
};

use ringrt_net::{Token, Waker};

use crate::cache::{CacheKey, ResultCache};
use crate::engine;
use crate::event;
use crate::metrics::{Metrics, Stage};
use crate::protocol::{parse_request, AnalysisRequest, CommandKind, Request, MAX_LINE_BYTES};
use crate::replication::{self, ReplicationState, ShipFrame};

/// How often blocked reads and the acceptor wake to check for shutdown.
pub(crate) const POLL_INTERVAL: Duration = Duration::from_millis(25);
/// Extra execution time a client allows beyond the queue deadline before
/// giving up on a reply.
pub(crate) const EXECUTION_GRACE: Duration = Duration::from_secs(60);

/// Which connection front end the acceptor hands new sockets to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Frontend {
    /// One blocking reader thread per connection (the default).
    #[default]
    Threads,
    /// Readiness event loops over epoll (`--frontend=event`, Linux only):
    /// all connections multiplexed over [`ServiceConfig::event_loops`]
    /// threads.
    Event,
}

impl Frontend {
    /// Stable lowercase token used in flags and status lines.
    #[must_use]
    pub fn token(self) -> &'static str {
        match self {
            Frontend::Threads => "threads",
            Frontend::Event => "event",
        }
    }
}

impl std::str::FromStr for Frontend {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "threads" | "thread" => Ok(Frontend::Threads),
            "event" | "epoll" => Ok(Frontend::Event),
            other => Err(format!(
                "unknown frontend `{other}` (expected `threads` or `event`)"
            )),
        }
    }
}

/// Server tuning knobs.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Bind address, e.g. `127.0.0.1:7400` (port 0 picks an ephemeral one).
    pub addr: String,
    /// Worker threads executing analyses (min 1).
    pub workers: usize,
    /// Bounded queue depth; a full queue answers `BUSY` (min 1).
    pub queue_depth: usize,
    /// Default per-request queue deadline, milliseconds.
    pub default_deadline_ms: u64,
    /// Cap on the diagnostic `SLEEP` command, milliseconds.
    pub max_sleep_ms: u64,
    /// Directory for the persistent ring registry's journal and snapshot;
    /// `None` keeps the registry in memory only.
    pub state_dir: Option<PathBuf>,
    /// Total result-cache entry cap (LRU-evicted beyond it).
    pub cache_entries: usize,
    /// Width of the shared execution pool that `SATURATION` and `ABU`
    /// requests fan their inner work across; `None` reads the
    /// `RINGRT_THREADS` override and falls back to the machine's
    /// parallelism.
    pub exec_threads: Option<usize>,
    /// Whether the flight recorder captures spans (the `TRACE` command
    /// returns nothing when off). Per-span cost when on is two clock reads
    /// and one nearly-uncontended mutex push; `exp_trace_overhead`
    /// measures the end-to-end impact.
    pub trace_enabled: bool,
    /// Span events retained **per recorder shard** (16 shards); older
    /// events are overwritten, never blocked on.
    pub trace_capacity: usize,
    /// Log any single-line request slower than this many milliseconds
    /// (end-to-end, including the response write) to stderr. `None`
    /// disables the log.
    pub slow_ms: Option<u64>,
    /// Run as a warm standby replicating the primary at this address:
    /// replay its journal continuously, answer reads, redirect mutations
    /// with `READONLY`, and promote on `PROMOTE` (or primary-loss
    /// timeout). Requires `state_dir`.
    pub follow: Option<String>,
    /// Journal segment rotation threshold in bytes; `None` uses
    /// [`DEFAULT_SEGMENT_BYTES`].
    pub segment_bytes: Option<u64>,
    /// A follower that has heard nothing from the primary for this long
    /// promotes itself. `None` (the default) promotes only on an explicit
    /// `PROMOTE`.
    pub promote_timeout_ms: Option<u64>,
    /// Which connection front end serves clients (see [`Frontend`]).
    pub frontend: Frontend,
    /// Open-connection cap shared by both front ends; an accept beyond it
    /// is answered `BUSY max_conns=<n>` and closed. `0` means unlimited.
    pub max_conns: usize,
    /// Readiness loops the event front end runs (min 1; 1–2 is plenty —
    /// parsing is cheap and the analyses run on the worker pool anyway).
    pub event_loops: usize,
    /// Event front end only: close a connection with no complete request
    /// for this long. `None` (the default) keeps idle clients forever —
    /// the population the event front end exists to hold cheaply.
    pub idle_timeout_ms: Option<u64>,
    /// Close a connection holding a *partial* request line (bytes but no
    /// newline) for this long — the slow-loris guard, enforced by both
    /// front ends. `0` disables it.
    pub read_deadline_ms: u64,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            addr: "127.0.0.1:0".to_owned(),
            workers: 4,
            queue_depth: 64,
            default_deadline_ms: 2_000,
            max_sleep_ms: 10_000,
            state_dir: None,
            cache_entries: crate::cache::DEFAULT_CAPACITY,
            exec_threads: None,
            trace_enabled: true,
            trace_capacity: ringrt_obs::DEFAULT_SHARD_CAPACITY,
            slow_ms: None,
            follow: None,
            segment_bytes: None,
            promote_timeout_ms: None,
            frontend: Frontend::Threads,
            max_conns: 0,
            event_loops: 1,
            idle_timeout_ms: None,
            read_deadline_ms: 30_000,
        }
    }
}

/// A finished reply on its way back to an event loop: which connection
/// and which reply slot within it the text belongs to.
pub(crate) struct Completion {
    pub(crate) conn: Token,
    pub(crate) slot: u64,
    pub(crate) text: String,
}

/// Where a worker sends its reply.
pub(crate) enum ReplyTo {
    /// The blocking front end: the connection thread waits on the channel.
    Channel(mpsc::Sender<String>),
    /// The event front end: push a [`Completion`] onto the owning loop's
    /// queue and wake it. The loop matches `conn`/`slot` back to the
    /// waiting reply position (the token is generation-stamped, so a
    /// completion for a connection that closed meanwhile is dropped).
    Loop {
        tx: mpsc::Sender<Completion>,
        waker: Arc<Waker>,
        conn: Token,
        slot: u64,
    },
}

impl ReplyTo {
    fn send(&self, text: String) {
        match self {
            ReplyTo::Channel(tx) => {
                let _ = tx.send(text);
            }
            ReplyTo::Loop {
                tx,
                waker,
                conn,
                slot,
            } => {
                let _ = tx.send(Completion {
                    conn: *conn,
                    slot: *slot,
                    text,
                });
                waker.wake();
            }
        }
    }
}

/// Everything [`ReplyTo::Loop`] needs except the slot, cloned per queued
/// request by the event loop.
pub(crate) struct QueueTicket {
    pub(crate) tx: mpsc::Sender<Completion>,
    pub(crate) waker: Arc<Waker>,
    pub(crate) conn: Token,
    pub(crate) slot: u64,
}

/// How [`handle_request`] should treat queue-bound work.
#[derive(Clone, Copy)]
pub(crate) enum SubmitMode<'a> {
    /// Block on the worker's reply (the single-request blocking path).
    Block,
    /// Hand back a [`Handled::Pending`] to collect later (batch submit).
    Defer,
    /// Queue with a loop-completion reply and hand back
    /// [`Handled::Queued`] immediately (the event front end never blocks).
    Queue(&'a QueueTicket),
}

/// One queued unit of work.
struct Job {
    request: Request,
    cache_key: Option<CacheKey>,
    reply: ReplyTo,
    enqueued: Instant,
    deadline: Duration,
}

/// State shared by every thread of one server instance.
pub(crate) struct Shared {
    pub(crate) config: ServiceConfig,
    queue: Mutex<VecDeque<Job>>,
    queue_cv: Condvar,
    pub(crate) metrics: Metrics,
    cache: ResultCache,
    pub(crate) registry: RingRegistry,
    /// Execution pool for intra-request parallelism (`SATURATION`
    /// multisection probes, `ABU` sample fan-out). Stateless between
    /// calls, so all workers share one.
    exec: Pool,
    /// Flight recorder shared with the exec pool and the registry journal;
    /// drained by the `TRACE` command.
    pub(crate) recorder: Arc<Recorder>,
    /// Replication role, lag, and peer counters (`SYNC`/`PROMOTE`/
    /// `REPLICATION`); the durable epoch itself lives in the registry.
    pub(crate) replication: ReplicationState,
    shutdown: AtomicBool,
    inflight: AtomicU64,
    started: Instant,
}

impl Shared {
    pub(crate) fn shutting_down(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }

    fn begin_shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        self.queue_cv.notify_all();
    }

    /// Pushes a job unless the queue is full, handing the job back (boxed,
    /// to keep the `Err` variant pointer-sized) so the caller can shed or
    /// run it inline. Jobs are still accepted during shutdown drain so
    /// already-connected clients finish cleanly.
    fn try_enqueue(&self, job: Job) -> Result<(), Box<Job>> {
        let mut q = self.queue.lock().expect("job queue poisoned");
        if q.len() >= self.config.queue_depth {
            return Err(Box::new(job));
        }
        q.push_back(job);
        let depth = q.len();
        drop(q);
        self.metrics.note_queue_depth(depth);
        self.queue_cv.notify_one();
        Ok(())
    }

    fn queue_len(&self) -> usize {
        self.queue.lock().expect("job queue poisoned").len()
    }

    fn render_stats(&self) -> String {
        use std::fmt::Write as _;
        let m = &self.metrics;
        let mut out = format!(
            "OK cmd=stats uptime_ms={} requests={} ok={} errors={} busy={} readonly={} \
             deadline_expired={}",
            self.started.elapsed().as_millis(),
            m.requests.load(Ordering::Relaxed),
            m.ok.load(Ordering::Relaxed),
            m.errors.load(Ordering::Relaxed),
            m.busy.load(Ordering::Relaxed),
            m.readonly.load(Ordering::Relaxed),
            m.deadline_expired.load(Ordering::Relaxed),
        );
        let _ = write!(
            out,
            " cache_hits={} cache_misses={} cache_entries={} cache_evictions={} cache_capacity={}",
            self.cache.hits(),
            self.cache.misses(),
            self.cache.entries(),
            self.cache.evictions(),
            self.cache.capacity(),
        );
        let (hit_fast, hit_fast_us) = m.hit_fast_totals();
        let _ = write!(out, " hit_fast={hit_fast} hit_fast_us={hit_fast_us}");
        let r = self.registry.metrics();
        let _ = write!(
            out,
            " rings={} registry_streams={} journal_bytes={} snapshot_bytes={} replay_ms={:.3} \
             replayed_streams={} incremental_tests={} full_tests={} incremental_evaluations={} \
             full_evaluations={} streams_total={} index_rebuilds={} store_bytes={}",
            r.rings,
            r.streams,
            r.journal_bytes,
            r.snapshot_bytes,
            r.replay_ms,
            r.replayed_streams,
            r.incremental_tests,
            r.full_tests,
            r.incremental_evaluations,
            r.full_evaluations,
            r.streams,
            r.index_rebuilds,
            r.store_bytes,
        );
        self.replication.render(self.registry.epoch(), &mut out);
        let _ = write!(
            out,
            " workers={} queue_capacity={} queue_len={} inflight={} exec_threads={}",
            self.config.workers,
            self.config.queue_depth,
            self.queue_len(),
            self.inflight.load(Ordering::Relaxed),
            self.exec.threads(),
        );
        let e = self.exec.stats();
        let _ = write!(
            out,
            " exec_parallel_runs={} exec_serial_runs={} exec_items={} exec_chunks={} \
             exec_steal_attempts={} exec_steals_ok={} exec_nested_splits={}",
            e.parallel_runs,
            e.serial_runs,
            e.items,
            e.chunks,
            e.steal_attempts,
            e.steals_ok,
            e.nested_splits,
        );
        let _ = write!(
            out,
            " frontend={} max_conns={} cluster={}",
            self.config.frontend.token(),
            self.config.max_conns,
            self.registry.cluster_id(),
        );
        m.render_conns(&mut out);
        m.render_workers(&mut out);
        m.render_latencies(&mut out);
        out
    }

    /// Renders the complete Prometheus text exposition for the `METRICS`
    /// command: the counters and latency histograms owned by [`Metrics`],
    /// plus the live gauges owned by the server, result cache, ring
    /// registry, and flight recorder.
    fn render_metrics(&self) -> String {
        let mut w = PromWriter::new();
        self.metrics.render_prometheus(&mut w);
        w.gauge(
            "ringrt_uptime_seconds",
            "Time since the server started.",
            &[],
            self.started.elapsed().as_secs_f64(),
        );
        w.gauge(
            "ringrt_workers",
            "Worker threads executing analyses.",
            &[],
            self.config.workers as f64,
        );
        w.gauge(
            "ringrt_queue_capacity",
            "Bounded admission-queue depth; overflow answers BUSY.",
            &[],
            self.config.queue_depth as f64,
        );
        w.gauge(
            "ringrt_queue_len",
            "Jobs currently waiting in the admission queue.",
            &[],
            self.queue_len() as f64,
        );
        w.gauge(
            "ringrt_inflight",
            "Jobs currently executing on workers.",
            &[],
            self.inflight.load(Ordering::Relaxed) as f64,
        );
        w.gauge(
            "ringrt_exec_threads",
            "Width of the shared intra-request execution pool.",
            &[],
            self.exec.threads() as f64,
        );
        let e = self.exec.stats();
        for (name, help, value) in [
            (
                "ringrt_exec_parallel_runs_total",
                "Pool maps that fanned out across workers.",
                e.parallel_runs,
            ),
            (
                "ringrt_exec_serial_runs_total",
                "Pool maps that ran inline on the caller.",
                e.serial_runs,
            ),
            (
                "ringrt_exec_items_total",
                "Items mapped through the pool.",
                e.items,
            ),
            (
                "ringrt_exec_chunks_total",
                "Chunks claimed by pool workers.",
                e.chunks,
            ),
            (
                "ringrt_exec_steal_attempts_total",
                "Victim searches by idle pool workers.",
                e.steal_attempts,
            ),
            (
                "ringrt_exec_steals_ok_total",
                "Victim searches that transferred work.",
                e.steals_ok,
            ),
            (
                "ringrt_exec_nested_splits_total",
                "Nested maps that split across idle workers.",
                e.nested_splits,
            ),
        ] {
            w.counter(name, help, &[], value as f64);
        }
        for (name, help, value) in [
            (
                "ringrt_cache_hits_total",
                "Result-cache hits.",
                self.cache.hits(),
            ),
            (
                "ringrt_cache_misses_total",
                "Result-cache misses.",
                self.cache.misses(),
            ),
            (
                "ringrt_cache_evictions_total",
                "Entries evicted by the LRU policy.",
                self.cache.evictions(),
            ),
        ] {
            w.counter(name, help, &[], value as f64);
        }
        w.gauge(
            "ringrt_cache_entries",
            "Distinct result-cache entries currently stored.",
            &[],
            self.cache.entries() as f64,
        );
        w.gauge(
            "ringrt_cache_capacity",
            "Total result-cache entry capacity.",
            &[],
            self.cache.capacity() as f64,
        );
        let r = self.registry.metrics();
        w.gauge(
            "ringrt_registry_rings",
            "Rings currently registered.",
            &[],
            r.rings as f64,
        );
        w.gauge(
            "ringrt_registry_streams",
            "Streams admitted across all rings.",
            &[],
            r.streams as f64,
        );
        w.gauge(
            "ringrt_registry_journal_bytes",
            "Size of the registry's append-only journal.",
            &[],
            r.journal_bytes as f64,
        );
        w.gauge(
            "ringrt_registry_snapshot_bytes",
            "Size of the registry's last compaction snapshot.",
            &[],
            r.snapshot_bytes as f64,
        );
        w.gauge(
            "ringrt_store_streams_total",
            "Live streams held by the columnar stream stores.",
            &[],
            r.streams as f64,
        );
        w.gauge(
            "ringrt_store_index_rebuilds",
            "Sequence-domain index rebuilds performed by the stream stores.",
            &[],
            r.index_rebuilds as f64,
        );
        w.gauge(
            "ringrt_store_bytes",
            "Approximate resident bytes of the columnar stream stores.",
            &[],
            r.store_bytes as f64,
        );
        for (kind, tests, evals) in [
            (
                "incremental",
                r.incremental_tests,
                r.incremental_evaluations,
            ),
            ("full", r.full_tests, r.full_evaluations),
        ] {
            w.counter(
                "ringrt_registry_tests_total",
                "Admission schedulability tests run, by strategy.",
                &[("kind", kind)],
                tests as f64,
            );
            w.counter(
                "ringrt_registry_evaluations_total",
                "Theorem evaluations performed by admission tests, by strategy.",
                &[("kind", kind)],
                evals as f64,
            );
        }
        self.replication
            .render_prometheus(self.registry.epoch(), &mut w);
        let t = self.recorder.stats();
        w.gauge(
            "ringrt_trace_enabled",
            "Whether the flight recorder is capturing spans.",
            &[],
            if t.enabled { 1.0 } else { 0.0 },
        );
        w.gauge(
            "ringrt_trace_capacity",
            "Span events retained across all recorder shards.",
            &[],
            t.capacity as f64,
        );
        w.counter(
            "ringrt_trace_spans_recorded_total",
            "Span events written to the flight recorder.",
            &[],
            t.recorded as f64,
        );
        w.counter(
            "ringrt_trace_spans_dropped_total",
            "Span events overwritten before being drained.",
            &[],
            t.dropped as f64,
        );
        w.finish()
    }

    /// The `STATS RESET` implementation: zeroes every accumulated counter
    /// and histogram across the metrics, cache, registry, and recorder,
    /// then re-seeds the windowed high-water marks — `queue_peak` with the
    /// live queue depth, the replication-lag peak with the live lag — so a
    /// new window never reads below the level it started at. Gauges
    /// (queue depth, cache occupancy, `exec_threads`, registry sizes) are
    /// untouched.
    fn reset_stats(&self) {
        self.metrics.reset();
        self.metrics.note_queue_depth(self.queue_len());
        self.replication.reset_window();
        self.cache.reset_counters();
        self.registry.reset_counters();
        self.recorder.reset_stats();
    }
}

/// A running server. Dropping the handle signals shutdown but does not
/// block; call [`ServerHandle::join`] to wait for a full drain.
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    connections: Arc<Mutex<Vec<JoinHandle<()>>>>,
    loops: Vec<event::LoopHandle>,
}

impl ServerHandle {
    /// The bound address (useful with port 0).
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Signals graceful shutdown: stop accepting, drain the queue, answer
    /// everything in flight. Returns immediately.
    pub fn shutdown(&self) {
        self.shared.begin_shutdown();
    }

    /// Signals shutdown and waits for every thread — acceptor, connection
    /// readers, workers — to finish.
    pub fn join(self) {
        self.shared.begin_shutdown();
        self.wait();
    }

    /// Waits (without signaling) until shutdown is triggered — by a client's
    /// `SHUTDOWN` request or a concurrent [`ServerHandle::shutdown`] — then
    /// drains every thread. This is how `ringrt serve` blocks.
    pub fn wait(mut self) {
        if let Some(a) = self.acceptor.take() {
            let _ = a.join();
        }
        // The acceptor has exited, so no new connection threads appear and
        // no further sockets reach the event loops. Loops drain their
        // connections (waiting for in-flight worker replies) before the
        // workers themselves are joined — workers keep popping the queue
        // until it is empty, so every completion a loop waits on arrives.
        for l in std::mem::take(&mut self.loops) {
            l.join();
        }
        let conns =
            std::mem::take(&mut *self.connections.lock().expect("connection list poisoned"));
        for c in conns {
            let _ = c.join();
        }
        for w in std::mem::take(&mut self.workers) {
            let _ = w.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.shared.begin_shutdown();
    }
}

/// Binds the listener and spawns the acceptor and worker threads.
///
/// # Errors
///
/// Propagates the bind failure (address in use, permission, …).
pub fn spawn(mut config: ServiceConfig) -> std::io::Result<ServerHandle> {
    config.workers = config.workers.max(1);
    config.queue_depth = config.queue_depth.max(1);
    config.event_loops = config.event_loops.clamp(1, 8);
    if config.follow.is_some() && config.state_dir.is_none() {
        return Err(std::io::Error::other(
            "--follow requires a state dir: the standby re-journals every shipped record",
        ));
    }
    let registry = match &config.state_dir {
        Some(dir) => {
            let options = StoreOptions {
                segment_bytes: config.segment_bytes.unwrap_or(DEFAULT_SEGMENT_BYTES).max(1),
                fs: FailpointFs::new(),
            };
            RingRegistry::open_with(dir, options)
                .map_err(|e| std::io::Error::other(e.to_string()))?
        }
        None => RingRegistry::in_memory(),
    };
    // A primary serves under a nonzero epoch from its first boot so that
    // followers always have something to fence against. Followers adopt
    // (and persist) the primary's epoch at SYNC time instead.
    if config.state_dir.is_some() && config.follow.is_none() && registry.epoch() == 0 {
        registry
            .set_epoch(1)
            .map_err(|e| std::io::Error::other(e.to_string()))?;
    }
    // A primary stamps its journal with a cluster identity on first boot;
    // followers adopt the primary's at SYNC time instead. The stamp is
    // what lets the SYNC handshake refuse shipping between unrelated
    // journals (see `handle_sync`).
    if config.state_dir.is_some() && config.follow.is_none() && registry.cluster_id() == 0 {
        registry
            .set_cluster_id(generate_cluster_id())
            .map_err(|e| std::io::Error::other(e.to_string()))?;
    }
    let listener = TcpListener::bind(&config.addr)?;
    listener.set_nonblocking(true)?;
    let addr = listener.local_addr()?;

    let recorder = Arc::new(if config.trace_enabled {
        Recorder::with_shard_capacity(config.trace_capacity.max(1))
    } else {
        Recorder::disabled()
    });
    registry.attach_recorder(Arc::clone(&recorder));
    let cache_entries = config.cache_entries;
    let shared = Arc::new(Shared {
        config: config.clone(),
        queue: Mutex::new(VecDeque::new()),
        queue_cv: Condvar::new(),
        metrics: Metrics::with_workers(config.workers),
        cache: ResultCache::with_capacity(cache_entries),
        registry,
        exec: config
            .exec_threads
            .map_or_else(Pool::from_env, |n| Pool::new(n.max(1)))
            .with_recorder(Arc::clone(&recorder)),
        recorder,
        replication: ReplicationState::new(config.follow.clone()),
        shutdown: AtomicBool::new(false),
        inflight: AtomicU64::new(0),
        started: Instant::now(),
    });

    let mut workers: Vec<JoinHandle<()>> = (0..config.workers)
        .map(|i| {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name(format!("ringrt-worker-{i}"))
                .spawn(move || worker_loop(&shared, i))
                .expect("spawn worker thread")
        })
        .collect();
    if config.follow.is_some() {
        let shared = Arc::clone(&shared);
        workers.push(
            std::thread::Builder::new()
                .name("ringrt-follower".to_owned())
                .spawn(move || follower_loop(&shared))
                .expect("spawn follower thread"),
        );
    }

    let connections = Arc::new(Mutex::new(Vec::new()));
    // The event loops are created (epoll instance, wakeup pipe) on this
    // thread so an unsupported platform surfaces as a bind-time error
    // instead of a dead acceptor.
    let loops = match config.frontend {
        Frontend::Threads => Vec::new(),
        Frontend::Event => event::spawn_loops(&shared, config.event_loops, &connections)?,
    };
    let acceptor = {
        let shared = Arc::clone(&shared);
        let dispatch = match config.frontend {
            Frontend::Threads => Dispatch::Threads {
                connections: Arc::clone(&connections),
            },
            Frontend::Event => Dispatch::Event {
                injectors: loops.iter().map(event::LoopHandle::injector).collect(),
                next: 0,
            },
        };
        std::thread::Builder::new()
            .name("ringrt-acceptor".to_owned())
            .spawn(move || accept_loop(&listener, &shared, dispatch))
            .expect("spawn acceptor thread")
    };

    Ok(ServerHandle {
        addr,
        shared,
        acceptor: Some(acceptor),
        workers,
        connections,
        loops,
    })
}

/// A 32-bit, nonzero journal identity for a never-stamped primary. Only
/// uniqueness across independently bootstrapped clusters matters, so
/// clock nanoseconds xor'd with the pid are entropy enough — no RNG
/// dependency needed.
fn generate_cluster_id() -> u64 {
    let nanos = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map_or(0, |d| d.subsec_nanos() as u64 ^ d.as_secs());
    let mixed = (nanos ^ (u64::from(std::process::id()).rotate_left(17))) & 0xffff_ffff;
    mixed.max(1)
}

/// Where the acceptor sends a connection that survived the shed check.
enum Dispatch {
    /// Spawn a blocking reader thread, tracked for join-at-shutdown.
    Threads {
        connections: Arc<Mutex<Vec<JoinHandle<()>>>>,
    },
    /// Round-robin the socket to an event loop's injection queue.
    Event {
        injectors: Vec<event::Injector>,
        next: usize,
    },
}

fn accept_loop(listener: &TcpListener, shared: &Arc<Shared>, mut dispatch: Dispatch) {
    let mut next_id = 0u64;
    while !shared.shutting_down() {
        match listener.accept() {
            Ok((mut stream, _peer)) => {
                let conns = &shared.metrics.conns;
                conns.accepted.fetch_add(1, Ordering::Relaxed);
                // Accept-time shedding, shared by both front ends: beyond
                // the cap the client gets one definite BUSY line instead
                // of a connection that silently degrades everyone else.
                let open = conns.open.load(Ordering::Relaxed);
                if shared.config.max_conns > 0 && open as usize >= shared.config.max_conns {
                    conns.accept_shed.fetch_add(1, Ordering::Relaxed);
                    let _ = stream.write_all(
                        format!("BUSY max_conns={}\n", shared.config.max_conns).as_bytes(),
                    );
                    continue; // drop the stream
                }
                conns.open.fetch_add(1, Ordering::Relaxed);
                match &mut dispatch {
                    Dispatch::Threads { connections } => {
                        let shared = Arc::clone(shared);
                        let handle = std::thread::Builder::new()
                            .name(format!("ringrt-conn-{next_id}"))
                            .spawn(move || {
                                let _guard = OpenConnGuard(Arc::clone(&shared));
                                connection_loop(stream, &shared);
                            })
                            .expect("spawn connection thread");
                        next_id += 1;
                        connections
                            .lock()
                            .expect("connection list poisoned")
                            .push(handle);
                    }
                    Dispatch::Event { injectors, next } => {
                        *next = (*next + 1) % injectors.len();
                        if !injectors[*next].send(stream) {
                            // Loop gone (shutdown race): undo the gauge.
                            shared.metrics.conns.open.fetch_sub(1, Ordering::Relaxed);
                        }
                    }
                }
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => {
                std::thread::sleep(POLL_INTERVAL);
            }
            Err(_) => std::thread::sleep(POLL_INTERVAL),
        }
    }
}

/// Decrements the open-connection gauge when a blocking reader exits,
/// whatever the exit path.
struct OpenConnGuard(Arc<Shared>);

impl Drop for OpenConnGuard {
    fn drop(&mut self) {
        self.0.metrics.conns.open.fetch_sub(1, Ordering::Relaxed);
    }
}

fn connection_loop(stream: TcpStream, shared: &Arc<Shared>) {
    if stream.set_read_timeout(Some(POLL_INTERVAL)).is_err() {
        return;
    }
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    let mut partial_since: Option<Instant> = None;
    loop {
        // The bounded read keeps partially received bytes in `line` across
        // timeouts, so clearing only after a complete line preserves slow
        // writers — up to the line cap and the partial-line read deadline.
        match read_request_line(
            &mut reader,
            &mut writer,
            &mut line,
            &mut partial_since,
            shared,
        ) {
            LineRead::Closed => return,
            LineRead::Pending => {
                if shared.shutting_down() {
                    return;
                }
                continue;
            }
            LineRead::Line => {}
        }
        let request_started = Instant::now();
        // The request line is only copied when slow-request logging
        // is on; the hot path stays allocation-free here.
        let slow_line = shared.config.slow_ms.map(|_| line.trim_end().to_owned());
        let response = handle_line(line.trim_end(), shared);
        line.clear();
        if let Response::Batch(count) = response {
            if !run_batch(count, &mut reader, &mut writer, &mut line, shared) {
                return;
            }
            continue;
        }
        if let Response::Ship(sub) = response {
            // The connection becomes a one-way ship stream until
            // the follower drops it or the server shuts down.
            serve_ship(&mut writer, *sub, shared);
            return;
        }
        let stop = matches!(response, Response::Close);
        let hit = matches!(response, Response::Hit(_));
        let text = response.into_text();
        shared.metrics.count_response(&text);
        // Cache hits skip the respond span: one sampled `hit` span per
        // HIT_SPAN_SAMPLE already covers parse→reply, and a span per hit
        // would dominate the ~µs fast path.
        let respond_span = (!hit).then(|| shared.recorder.span("request", "respond"));
        let write_ok = writer
            .write_all(format!("{text}\n").as_bytes())
            .and_then(|()| writer.flush())
            .is_ok();
        if let Some(span) = respond_span {
            shared.metrics.record_stage(Stage::Respond, span.finish());
        }
        if let (Some(limit_ms), Some(request)) = (shared.config.slow_ms, slow_line) {
            let elapsed = request_started.elapsed();
            if elapsed >= Duration::from_millis(limit_ms) {
                eprintln!(
                    "ringrt-service: slow request ({} ms >= {limit_ms} ms): {request}",
                    elapsed.as_millis()
                );
            }
        }
        if !write_ok || stop {
            return;
        }
    }
}

/// What one bounded read attempt on the blocking front end produced.
enum LineRead {
    /// A complete newline-terminated request line sits in the buffer.
    Line,
    /// No complete line yet (poll-interval timeout); partial bytes stay
    /// buffered for the next attempt.
    Pending,
    /// The connection is finished: EOF, I/O error, an oversized line, or
    /// a partial line older than the read deadline (the slow-loris guard
    /// — both rejections are answered with an `ERR` line first).
    Closed,
}

/// Reads one request line with [`MAX_LINE_BYTES`] enforced *while
/// reading*: the `take` adapter bounds how many bytes a client can make
/// this thread buffer, so "never send a newline" cannot grow memory, and
/// `partial_since` bounds how long it can hold the bytes it has started.
fn read_request_line(
    reader: &mut BufReader<TcpStream>,
    writer: &mut TcpStream,
    line: &mut String,
    partial_since: &mut Option<Instant>,
    shared: &Arc<Shared>,
) -> LineRead {
    // +2 so a line of exactly MAX_LINE_BYTES plus "\r\n" still completes;
    // anything longer trips the cap below.
    let budget = (MAX_LINE_BYTES + 2).saturating_sub(line.len()) as u64;
    match reader.by_ref().take(budget).read_line(line) {
        Ok(0) => LineRead::Closed, // client closed (possibly mid-line)
        Ok(_) if line.ends_with('\n') => {
            *partial_since = None;
            LineRead::Line
        }
        Ok(_) => {
            if line.len() > MAX_LINE_BYTES {
                shared
                    .metrics
                    .conns
                    .oversized_rejected
                    .fetch_add(1, Ordering::Relaxed);
                let _ = writer
                    .write_all(format!("ERR line exceeds {MAX_LINE_BYTES} bytes\n").as_bytes())
                    .and_then(|()| writer.flush());
            }
            LineRead::Closed // oversized, or EOF with a dangling partial
        }
        Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {
            let deadline = shared.config.read_deadline_ms;
            if !line.is_empty() && deadline > 0 {
                let since = *partial_since.get_or_insert_with(Instant::now);
                if since.elapsed() >= Duration::from_millis(deadline) {
                    shared
                        .metrics
                        .conns
                        .read_deadline_closed
                        .fetch_add(1, Ordering::Relaxed);
                    let _ = writer
                        .write_all(
                            format!("ERR read deadline: partial line idle for {deadline} ms\n")
                                .as_bytes(),
                        )
                        .and_then(|()| writer.flush());
                    return LineRead::Closed;
                }
            }
            LineRead::Pending
        }
        Err(_) => LineRead::Closed,
    }
}

/// Reads `count` pipelined request lines in two phases: a **submit** pass
/// that handles each line at its arrival position (inline commands —
/// registry mutations, PING, cache hits — execute right there, preserving
/// ADMIT-then-CHECK pipeline semantics; queue-bound analyses are enqueued
/// without waiting), and a **collect** pass that gathers worker replies in
/// submission order. Independent analyses therefore overlap across the
/// worker pool while the response order — and the single flushing write
/// the syscall-saving `BATCH` exists for (measured by `exp_service_load`)
/// — stays exactly as if they had run serially. Returns whether the
/// connection should stay open.
fn run_batch(
    count: usize,
    reader: &mut BufReader<TcpStream>,
    writer: &mut TcpStream,
    line: &mut String,
    shared: &Arc<Shared>,
) -> bool {
    /// One batch position: already answered, or awaiting a worker reply.
    enum Slot {
        Ready(String),
        Pending(Pending),
    }
    let mut slots: Vec<Slot> = Vec::with_capacity(count);
    let mut keep_open = true;
    let mut partial_since: Option<Instant> = None;
    while slots.len() < count {
        match read_request_line(reader, writer, line, &mut partial_since, shared) {
            LineRead::Closed => return false, // client closed mid-batch
            LineRead::Pending => {
                if shared.shutting_down() {
                    return false;
                }
                continue;
            }
            LineRead::Line => {}
        }
        let slot = match handle_request(line.trim_end(), shared, SubmitMode::Defer) {
            // One framing level is enough; nesting would let a
            // client demand unbounded buffering.
            Handled::Ready(Response::Batch(_)) => {
                Slot::Ready("ERR nested BATCH is not allowed".to_owned())
            }
            // A ship stream takes over the whole connection; it
            // cannot share one with framed batch replies.
            Handled::Ready(Response::Ship(_)) => {
                Slot::Ready("ERR SYNC is not allowed inside BATCH".to_owned())
            }
            Handled::Ready(Response::Close) => {
                keep_open = false;
                Slot::Ready(Response::Close.into_text())
            }
            Handled::Ready(Response::Line(text) | Response::Hit(text)) => Slot::Ready(text),
            Handled::Pending(pending) => Slot::Pending(pending),
            Handled::Queued { .. } => {
                unreachable!("SubmitMode::Defer never yields Handled::Queued")
            }
        };
        line.clear();
        slots.push(slot);
    }
    // In-order reassembly: waiting on slot k never delays the *execution*
    // of slot k+1 — it is already on a worker — only the reply pickup.
    let mut out = String::new();
    for slot in slots {
        let text = match slot {
            Slot::Ready(text) => text,
            Slot::Pending(pending) => pending.collect(shared),
        };
        shared.metrics.count_response(&text);
        out.push_str(&text);
        out.push('\n');
    }
    let respond_span = shared.recorder.span("request", "respond");
    let write_ok = writer
        .write_all(out.as_bytes())
        .and_then(|()| writer.flush())
        .is_ok();
    shared
        .metrics
        .record_stage(Stage::Respond, respond_span.finish());
    write_ok && keep_open
}

/// A response line, a connection-closing line, a batch header asking the
/// connection loop to collect the next `n` responses into one write, or a
/// journal subscription turning the connection into a ship stream.
pub(crate) enum Response {
    Line(String),
    /// A cache-hit line on the zero-span fast path: same wire format as
    /// [`Response::Line`], but write paths skip the per-response
    /// `respond` span (the sampled `hit` span in [`run_cached`] already
    /// covers the whole parse→reply interval).
    Hit(String),
    Close,
    Batch(usize),
    Ship(Box<ShipSubscription>),
}

impl Response {
    pub(crate) fn into_text(self) -> String {
        match self {
            Response::Line(s) | Response::Hit(s) => s,
            Response::Close => "OK cmd=shutdown".to_owned(),
            Response::Batch(_) => unreachable!("batch headers are framed, not rendered"),
            Response::Ship(_) => unreachable!("ship streams are served, not rendered"),
        }
    }
}

/// A job already on the worker queue whose reply has not been read yet.
/// Produced by the batch submit phase; [`Pending::collect`] blocks for the
/// reply and records the completed request's latency.
pub(crate) struct Pending {
    rx: mpsc::Receiver<String>,
    command: CommandKind,
    started: Instant,
    wait: Duration,
}

impl Pending {
    pub(crate) fn collect(self, shared: &Arc<Shared>) -> String {
        let text = match self.rx.recv_timeout(self.wait) {
            Ok(text) => text,
            Err(_) => "ERR request lost (worker gave no reply)".to_owned(),
        };
        record_completed(shared, self.command, self.started, &text);
        text
    }
}

/// What handling one request line produced: an immediate response, a
/// queued job to collect later (batch submit phase), or a job queued with
/// a loop-completion reply (event front end).
pub(crate) enum Handled {
    Ready(Response),
    Pending(Pending),
    /// The job is on the queue; its reply will arrive as a [`Completion`]
    /// for the ticket's `conn`/`slot`. Carries what the loop needs to
    /// record the latency when the reply lands.
    Queued {
        command: CommandKind,
        started: Instant,
    },
}

fn handle_line(line: &str, shared: &Arc<Shared>) -> Response {
    match handle_request(line, shared, SubmitMode::Block) {
        Handled::Ready(response) => response,
        Handled::Pending(pending) => Response::Line(pending.collect(shared)),
        Handled::Queued { .. } => unreachable!("SubmitMode::Block never yields Handled::Queued"),
    }
}

/// Handles one request line. `mode` controls what happens to queue-bound
/// requests — block for the reply, defer collection (batch submit phase),
/// or queue with a loop-completion ticket (event front end); everything
/// answerable inline is answered inline either way.
pub(crate) fn handle_request(line: &str, shared: &Arc<Shared>, mode: SubmitMode) -> Handled {
    let ready = |response: Response| Handled::Ready(response);
    shared.metrics.requests.fetch_add(1, Ordering::Relaxed);
    // Parse is timed with plain clock reads, not an eager span: the
    // cacheable commands defer parse-stage recording into `run_cached`,
    // which skips it entirely on a cache hit (the zero-span fast path)
    // and records it together with the cache stage on a miss.
    let t0 = Instant::now();
    let parsed = parse_request(line);
    let parse_dur = t0.elapsed();
    let request = match parsed {
        Ok(r) => r,
        Err(msg) => {
            record_parse(shared, t0, parse_dur);
            return ready(Response::Line(format!("ERR {msg}")));
        }
    };
    let defers_parse = matches!(request, Request::Abu(_) | Request::Analysis(_))
        || matches!(
            request,
            Request::RingAnalysis { command, .. } if command != CommandKind::Check
        );
    if !defers_parse {
        record_parse(shared, t0, parse_dur);
    }
    // A warm standby redirects mutations instead of erroring: the client
    // learns where the primary is and under which epoch it serves. Inside
    // a BATCH this runs per frame, so only the mutating positions are
    // redirected.
    if shared.replication.is_follower() {
        if let Some(cmd) = mutation_command(&request) {
            return ready(Response::Line(format!(
                "READONLY cmd={cmd} primary={} epoch={}",
                shared.replication.source().unwrap_or("-"),
                shared.registry.epoch(),
            )));
        }
    }
    match request {
        Request::Ping => ready(Response::Line("OK cmd=ping".to_owned())),
        Request::Stats => ready(Response::Line(shared.render_stats())),
        Request::StatsReset => {
            shared.reset_stats();
            ready(Response::Line("OK cmd=stats_reset".to_owned()))
        }
        Request::Metrics => {
            let body = shared.render_metrics();
            let body = body.trim_end();
            ready(Response::Line(format!(
                "OK cmd=metrics lines={}\n{body}",
                body.lines().count()
            )))
        }
        Request::Trace { count } => {
            let events = shared.recorder.drain(count);
            let json = render_chrome_trace(&events);
            ready(Response::Line(format!(
                "OK cmd=trace events={}\n{json}",
                events.len()
            )))
        }
        Request::Shutdown => {
            shared.begin_shutdown();
            ready(Response::Close)
        }
        Request::Sync {
            epoch,
            seq,
            cluster,
        } => ready(handle_sync(shared, epoch, seq, cluster)),
        Request::Promote => ready(Response::Line(handle_promote(shared))),
        Request::Replication => {
            let mut out = "OK cmd=replication".to_owned();
            shared.replication.render(shared.registry.epoch(), &mut out);
            ready(Response::Line(out))
        }
        Request::Batch { count } => ready(Response::Batch(count)),
        Request::Evict => ready(Response::Line(format!(
            "OK cmd=evict evicted={}",
            shared.cache.clear()
        ))),
        Request::Compact => ready(Response::Line(match shared.registry.compact() {
            Ok(()) => {
                let m = shared.registry.metrics();
                format!(
                    "OK cmd=compact journal_bytes={} snapshot_bytes={}",
                    m.journal_bytes, m.snapshot_bytes
                )
            }
            Err(e) => format!("ERR {e}"),
        })),
        Request::Register { ring, spec } => ready(Response::Line(
            match shared.registry.register(&ring, spec) {
                Ok(()) => format!(
                    "OK cmd=register ring={ring} protocol={} mbps={} stations={}",
                    spec.protocol,
                    spec.mbps,
                    fmt_stations(spec.stations),
                ),
                Err(e) => format!("ERR {e}"),
            },
        )),
        Request::Admit {
            ring,
            stream,
            candidate,
        } => ready(Response::Line(
            match shared.registry.admit(&ring, &stream, candidate) {
                Ok(out) => render_admission("admit", &ring, &stream, &out),
                Err(e) => format!("ERR {e}"),
            },
        )),
        Request::Remove { ring, stream } => ready(Response::Line(
            match shared.registry.remove(&ring, &stream) {
                Ok(out) => render_admission("remove", &ring, &stream, &out),
                Err(e) => format!("ERR {e}"),
            },
        )),
        Request::Unregister { ring } => {
            ready(Response::Line(match shared.registry.unregister(&ring) {
                Ok(()) => format!("OK cmd=unregister ring={ring}"),
                Err(e) => format!("ERR {e}"),
            }))
        }
        Request::Show {
            ring,
            limit,
            offset,
        } => ready(Response::Line(match ring {
            Some(ring) if limit.is_some() || offset.is_some() => {
                let offset = offset.unwrap_or(0);
                let limit = limit.unwrap_or(usize::MAX);
                match shared.registry.ring_page(&ring, offset, limit) {
                    Ok(page) => render_show_page(&ring, &page),
                    Err(e) => format!("ERR {e}"),
                }
            }
            Some(ring) => match shared.registry.ring_state(&ring) {
                Ok(state) => render_show(&ring, &state),
                Err(e) => format!("ERR {e}"),
            },
            None => {
                let names = shared.registry.ring_names();
                format!(
                    "OK cmd=show rings={} names={}",
                    names.len(),
                    if names.is_empty() {
                        "-".to_owned()
                    } else {
                        names.join(",")
                    }
                )
            }
        })),
        Request::RingAnalysis {
            command: CommandKind::Check,
            ring,
            ..
        } => {
            // Answered inline with the counted full test — the baseline the
            // STATS evaluation counters compare ADMIT against.
            let started = Instant::now();
            let text = match shared.registry.check_full(&ring) {
                Ok(check) => format!(
                    "OK cmd=check ring={ring} protocol={} mbps={} stations={} streams={} \
                     utilization={:.6} schedulable={} evaluations={}",
                    check.spec.protocol,
                    check.spec.mbps,
                    check.spec.effective_stations(check.streams),
                    check.streams,
                    check.utilization,
                    check.schedulable,
                    check.evaluations,
                ),
                Err(e) => format!("ERR {e}"),
            };
            record_completed(shared, CommandKind::Check, started, &text);
            ready(Response::Line(text))
        }
        Request::RingAnalysis {
            command,
            ring,
            seconds,
            async_load,
            seed,
            deadline_ms,
        } => {
            // Resolve the stored ring into a plain analysis request, then
            // run it through the normal queue. Its cache key is scoped to
            // the ring's mutation generation: any later ADMIT/REMOVE (or
            // even an unregister/re-register cycle) bumps the generation
            // and strands the entry, so stored-ring results can be cached
            // without an EVICT protocol.
            let (state, generation) = match shared.registry.ring_snapshot(&ring) {
                Ok(s) => s,
                Err(e) => {
                    record_parse(shared, t0, parse_dur);
                    return ready(Response::Line(format!("ERR {e}")));
                }
            };
            let Some(set) = state.message_set() else {
                record_parse(shared, t0, parse_dur);
                return ready(Response::Line(format!("ERR ring `{ring}` has no streams")));
            };
            let req = AnalysisRequest {
                command,
                protocol: state.spec.protocol,
                mbps: state.spec.mbps,
                stations: Some(state.spec.effective_stations(set.len())),
                set,
                seconds,
                async_load,
                seed,
                deadline_ms,
            };
            let key = CacheKey::for_request(&req).map(|k| k.with_ring_generation(generation));
            let deadline_ms = req.deadline_ms;
            run_cached(
                shared,
                Request::Analysis(req),
                key,
                command,
                deadline_ms,
                mode,
                (t0, parse_dur),
            )
        }
        Request::Sleep { ms, deadline_ms } => submit(
            shared,
            Request::Sleep { ms, deadline_ms },
            None,
            CommandKind::Sleep,
            deadline_ms,
            mode,
        ),
        Request::Abu(req) => {
            let key = Some(CacheKey::for_abu(&req));
            let deadline_ms = req.deadline_ms;
            run_cached(
                shared,
                Request::Abu(req),
                key,
                CommandKind::Abu,
                deadline_ms,
                mode,
                (t0, parse_dur),
            )
        }
        Request::Analysis(req) => {
            let key = CacheKey::for_request(&req);
            let command = req.command;
            let deadline_ms = req.deadline_ms;
            run_cached(
                shared,
                Request::Analysis(req),
                key,
                command,
                deadline_ms,
                mode,
                (t0, parse_dur),
            )
        }
    }
}

/// Records the parse stage from an already-measured interval (span plus
/// stage histogram) — the non-fast-path equivalent of the eager span the
/// parse stage used to open.
fn record_parse(shared: &Shared, t0: Instant, dur: Duration) {
    shared.recorder.record("request", "parse", t0, dur);
    shared.metrics.record_stage(Stage::Parse, dur);
}

/// Cache-checks one queueable request, then submits it.
///
/// `parse` carries the request's arrival instant and measured parse
/// duration. On a cache **hit** this is the zero-span fast path: no
/// per-stage spans, no stage-histogram locks — two sharded-counter adds
/// ([`Metrics::note_hit`]), the per-command latency record, and (one hit
/// in [`crate::metrics::HIT_SPAN_SAMPLE`]) a single sampled
/// `request`/`hit` span covering the whole parse→reply interval. On a
/// **miss** the deferred parse stage and the cache probe are recorded
/// together in one recorder round trip before the job is submitted.
fn run_cached(
    shared: &Arc<Shared>,
    request: Request,
    key: Option<CacheKey>,
    command: CommandKind,
    deadline_ms: Option<u64>,
    mode: SubmitMode,
    parse: (Instant, Duration),
) -> Handled {
    let (t0, parse_dur) = parse;
    if let Some(k) = &key {
        let cache_start = Instant::now();
        let found = shared.cache.get(k);
        if let Some(body) = found {
            let elapsed = t0.elapsed();
            shared.metrics.record_latency(command, elapsed);
            if shared.metrics.note_hit(elapsed) {
                shared.recorder.record("request", "hit", t0, elapsed);
            }
            return Handled::Ready(Response::Hit(format!("{body} cached=true")));
        }
        let cache_dur = cache_start.elapsed();
        shared.recorder.record_many(&[
            Measured {
                cat: "request",
                name: "parse",
                start: t0,
                dur: parse_dur,
            },
            Measured {
                cat: "request",
                name: "cache",
                start: cache_start,
                dur: cache_dur,
            },
        ]);
        shared.metrics.record_stage(Stage::Parse, parse_dur);
        shared.metrics.record_stage(Stage::Cache, cache_dur);
    } else {
        // Uncacheable (e.g. explicitly seeded) analyses skip the probe;
        // only the deferred parse stage is owed.
        record_parse(shared, t0, parse_dur);
    }
    submit(shared, request, key, command, deadline_ms, mode)
}

fn fmt_stations(stations: Option<usize>) -> String {
    stations.map_or_else(|| "-".to_owned(), |n| n.to_string())
}

fn render_admission(cmd: &str, ring: &str, stream: &str, out: &AdmissionOutcome) -> String {
    format!(
        "OK cmd={cmd} ring={ring} stream={stream} schedulable={} admitted={} incremental={} \
         evaluations={} streams={}",
        out.check.schedulable,
        out.applied,
        out.check.incremental,
        out.check.evaluations,
        out.streams,
    )
}

/// Renders one ring's full state. Deterministic down to the byte: stream
/// order is admission order and every float uses Rust's round-trip `{}`
/// formatting, so the output is identical before and after a server
/// restart — the property the persistence integration test pins down.
fn render_show(ring: &str, state: &RingState) -> String {
    let spec: &RingSpec = &state.spec;
    let mut out = format!(
        "OK cmd=show ring={ring} protocol={} mbps={} stations={} streams={}",
        spec.protocol,
        spec.mbps,
        fmt_stations(spec.stations),
        state.len(),
    );
    out.push_str(" set=");
    if state.is_empty() {
        out.push('-');
        return out;
    }
    for (i, (name, stream)) in state.iter().enumerate() {
        if i > 0 {
            out.push(';');
        }
        push_stream(&mut out, name, &stream);
    }
    out
}

/// One `name:period_ms,bits[,deadline_ms]` entry — the `set=` grammar
/// shared by the unpaged and paged SHOW renderers.
fn push_stream(out: &mut String, name: &str, stream: &ringrt_model::SyncStream) {
    use std::fmt::Write as _;
    let _ = write!(
        out,
        "{}:{},{}",
        name,
        stream.period().as_millis(),
        stream.length_bits().as_u64(),
    );
    if !stream.has_implicit_deadline() {
        let _ = write!(out, ",{}", stream.relative_deadline().as_millis());
    }
}

/// Renders one page of a ring's admitted set. Same `set=` grammar as
/// [`render_show`], but the header carries the page window (`shown=`,
/// `offset=`) alongside the ring-wide stream count, so clients can walk
/// a 100k-stream ring without ever receiving a 100k-entry line.
fn render_show_page(ring: &str, page: &ringrt_registry::RingPage) -> String {
    let spec: &RingSpec = &page.spec;
    let mut out = format!(
        "OK cmd=show ring={ring} protocol={} mbps={} stations={} streams={} shown={} offset={}",
        spec.protocol,
        spec.mbps,
        fmt_stations(spec.stations),
        page.streams,
        page.page.len(),
        page.offset,
    );
    out.push_str(" set=");
    if page.page.is_empty() {
        out.push('-');
        return out;
    }
    for (i, (name, stream)) in page.page.iter().enumerate() {
        if i > 0 {
            out.push(';');
        }
        push_stream(&mut out, name, stream);
    }
    out
}

/// Records latency only for completed (`OK`) requests, so BUSY fast-rejects
/// and errors do not skew the per-command histograms.
pub(crate) fn record_completed(
    shared: &Arc<Shared>,
    command: CommandKind,
    started: Instant,
    text: &str,
) {
    if text.starts_with("OK") {
        shared.metrics.record_latency(command, started.elapsed());
    }
}

/// Queues a job. When the queue accepts it: [`SubmitMode::Block`] waits
/// for the reply right here, [`SubmitMode::Defer`] hands back a
/// [`Pending`] for the batch collect phase, and [`SubmitMode::Queue`]
/// wires the reply to the event loop's completion queue and returns
/// [`Handled::Queued`] without waiting. A full queue sheds load with
/// `BUSY` on the Block and Queue paths; during a blocking batch (`Defer`)
/// it runs the job **inline on the connection thread** instead — a
/// serially-submitted batch could never overflow the queue, and answering
/// `BUSY` for a position the client already committed to would make batch
/// semantics depend on worker timing. (The event front end has no
/// dedicated thread to burn, so its batches do shed with `BUSY`; the
/// divergence is documented in DESIGN.md §5g.)
fn submit(
    shared: &Arc<Shared>,
    request: Request,
    cache_key: Option<CacheKey>,
    command: CommandKind,
    deadline_ms: Option<u64>,
    mode: SubmitMode,
) -> Handled {
    let started = Instant::now();
    let deadline = Duration::from_millis(deadline_ms.unwrap_or(shared.config.default_deadline_ms));
    let (reply, rx) = match mode {
        SubmitMode::Queue(ticket) => (
            ReplyTo::Loop {
                tx: ticket.tx.clone(),
                waker: Arc::clone(&ticket.waker),
                conn: ticket.conn,
                slot: ticket.slot,
            },
            None,
        ),
        SubmitMode::Block | SubmitMode::Defer => {
            let (tx, rx) = mpsc::channel();
            (ReplyTo::Channel(tx), Some(rx))
        }
    };
    let job = Job {
        request,
        cache_key,
        reply,
        enqueued: started,
        deadline,
    };
    match shared.try_enqueue(job) {
        Ok(()) => match mode {
            SubmitMode::Queue(_) => Handled::Queued { command, started },
            SubmitMode::Block | SubmitMode::Defer => {
                let pending = Pending {
                    rx: rx.expect("blocking submit always has a reply channel"),
                    command,
                    started,
                    wait: deadline + EXECUTION_GRACE,
                };
                if matches!(mode, SubmitMode::Defer) {
                    Handled::Pending(pending)
                } else {
                    Handled::Ready(Response::Line(pending.collect(shared)))
                }
            }
        },
        Err(job) if matches!(mode, SubmitMode::Defer) => {
            let run_span = shared.recorder.span("request", "execute");
            let text = execute_request(shared, &job.request, job.cache_key.as_ref());
            shared
                .metrics
                .record_stage(Stage::Execute, run_span.finish());
            record_completed(shared, command, started, &text);
            Handled::Ready(Response::Line(text))
        }
        Err(_) => Handled::Ready(Response::Line(format!(
            "BUSY queue_capacity={}",
            shared.config.queue_depth
        ))),
    }
}

fn worker_loop(shared: &Arc<Shared>, index: usize) {
    loop {
        let job = {
            let mut q = shared.queue.lock().expect("job queue poisoned");
            loop {
                if let Some(job) = q.pop_front() {
                    break job;
                }
                if shared.shutting_down() {
                    return; // queue drained, shutdown requested
                }
                q = shared.queue_cv.wait(q).expect("job queue poisoned");
            }
        };
        // Every popped job's queue wait is recorded — expired jobs
        // included, since their wait is exactly the signal the stage
        // histogram exists to expose.
        let waited = job.enqueued.elapsed();
        shared.metrics.record_stage(Stage::QueueWait, waited);
        if waited > job.deadline {
            shared
                .recorder
                .record("request", "queue_wait", job.enqueued, waited);
            shared
                .metrics
                .deadline_expired
                .fetch_add(1, Ordering::Relaxed);
            job.reply.send(format!(
                "ERR deadline expired after {} ms in queue",
                waited.as_millis()
            ));
            continue;
        }
        shared.inflight.fetch_add(1, Ordering::Relaxed);
        let exec_started = Instant::now();
        let text = execute_request(shared, &job.request, job.cache_key.as_ref());
        let busy = exec_started.elapsed();
        // Both finished stages go into the recorder under one shard lock.
        shared.recorder.record_many(&[
            Measured {
                cat: "request",
                name: "queue_wait",
                start: job.enqueued,
                dur: waited,
            },
            Measured {
                cat: "request",
                name: "execute",
                start: exec_started,
                dur: busy,
            },
        ]);
        shared.metrics.record_stage(Stage::Execute, busy);
        shared.metrics.record_worker(index, busy);
        shared.inflight.fetch_sub(1, Ordering::Relaxed);
        job.reply.send(text);
    }
}

/// Executes one queueable request body. Called from workers and, for
/// batch positions that found the queue full, from connection threads.
fn execute_request(
    shared: &Arc<Shared>,
    request: &Request,
    cache_key: Option<&CacheKey>,
) -> String {
    match request {
        Request::Sleep { ms, .. } => {
            let ms = (*ms).min(shared.config.max_sleep_ms);
            std::thread::sleep(Duration::from_millis(ms));
            format!("OK cmd=sleep ms={ms}")
        }
        Request::Analysis(req) => {
            finish_cacheable(shared, engine::execute_with(req, &shared.exec), cache_key)
        }
        Request::Abu(req) => {
            finish_cacheable(shared, engine::execute_abu(req, &shared.exec), cache_key)
        }
        other => format!("ERR internal: non-queueable request {other:?}"),
    }
}

/// Stores a successful body under its cache key and stamps the cache
/// marker the client sees.
fn finish_cacheable(shared: &Arc<Shared>, body: String, cache_key: Option<&CacheKey>) -> String {
    if !body.starts_with("OK") {
        return body;
    }
    if let Some(key) = cache_key {
        shared.cache.insert(key.clone(), body.clone());
    }
    format!("{body} cached=false")
}

/// The command token of a state-mutating request, or `None` for reads.
/// `COMPACT` counts as a mutation: a standby's journal is the primary's
/// shipped history, and folding it locally would fork the layouts.
fn mutation_command(request: &Request) -> Option<&'static str> {
    match request {
        Request::Register { .. } => Some("register"),
        Request::Admit { .. } => Some("admit"),
        Request::Remove { .. } => Some("remove"),
        Request::Unregister { .. } => Some("unregister"),
        Request::Compact => Some("compact"),
        _ => None,
    }
}

/// `SYNC epoch=<e> seq=<n> cluster=<c>`: fence the requester's epoch and
/// journal identity against ours, then hand the connection a journal
/// subscription.
fn handle_sync(shared: &Arc<Shared>, epoch: u64, seq: u64, cluster: u64) -> Response {
    if shared.replication.is_follower() {
        return Response::Line(
            "ERR cmd=sync a follower does not ship its journal (SYNC the primary)".to_owned(),
        );
    }
    let serving = shared.registry.epoch();
    if serving == 0 {
        return Response::Line(
            "ERR cmd=sync journal shipping requires a persistent state dir".to_owned(),
        );
    }
    // Cluster fencing: a nonzero requester identity names the journal
    // lineage its history belongs to. A mismatch means the follower
    // replicated a *different* cluster — epochs and sequence numbers from
    // unrelated histories collide freely, so shipping would interleave
    // two journals. Identity 0 is a fresh journal that adopts ours.
    let ours = shared.registry.cluster_id();
    if cluster != 0 && cluster != ours {
        return Response::Line(format!(
            "ERR cmd=sync cluster mismatch requester_cluster={cluster} cluster={ours}"
        ));
    }
    // Epoch fencing: a nonzero requester epoch is a claim about whose
    // history its journal extends. Lower means it replicated a superseded
    // primary (its tail may diverge from ours); higher means *we* are the
    // stale one. Either way shipping would risk split-brain, so refuse.
    // Epoch 0 is a fresh follower with nothing to fence.
    if epoch != 0 && epoch != serving {
        return Response::Line(format!(
            "ERR cmd=sync fenced requester_epoch={epoch} epoch={serving}"
        ));
    }
    match shared.registry.subscribe(seq) {
        Ok(sub) => Response::Ship(Box::new(sub)),
        Err(e) => Response::Line(format!("ERR {e}")),
    }
}

/// `PROMOTE`: flip a follower to primary under a freshly fenced epoch.
fn handle_promote(shared: &Arc<Shared>) -> String {
    if !shared.replication.is_follower() {
        return format!(
            "ERR cmd=promote already primary epoch={}",
            shared.registry.epoch()
        );
    }
    match promote_self(shared) {
        Ok(epoch) => format!(
            "OK cmd=promote epoch={epoch} applied_seq={}",
            shared.registry.next_seq().saturating_sub(1)
        ),
        Err(e) => format!("ERR cmd=promote {e}"),
    }
}

/// Durably publishes the next epoch, then flips the role. Epoch first:
/// if the fence never hits disk the node must stay a follower, or a
/// restart would resurrect it under the old primary's epoch.
fn promote_self(shared: &Arc<Shared>) -> Result<u64, ringrt_registry::RegistryError> {
    let epoch = shared.registry.epoch().saturating_add(1).max(2);
    shared.registry.set_epoch(epoch)?;
    shared.replication.promote();
    Ok(epoch)
}

/// Serves one `SYNC` subscription: snapshot (if any) and backlog in one
/// write, then live records as they commit, with periodic pings carrying
/// the current head so the follower can measure its lag.
pub(crate) fn serve_ship(writer: &mut TcpStream, sub: ShipSubscription, shared: &Arc<Shared>) {
    let header = replication::sync_header(
        sub.epoch,
        sub.head,
        sub.snapshot.is_some(),
        sub.backlog.len(),
        sub.cluster,
    );
    shared.metrics.count_response(&header);
    let mut out = String::new();
    out.push_str(&header);
    out.push('\n');
    if let Some((seq, text)) = &sub.snapshot {
        out.push_str(&replication::render_snapshot(
            *seq,
            text.lines().count() as u64,
        ));
        out.push('\n');
        for line in text.lines() {
            out.push_str(line);
            out.push('\n');
        }
    }
    for record in &sub.backlog {
        out.push_str(&replication::render_record(record));
        out.push('\n');
        shared.replication.note_shipped();
    }
    if writer
        .write_all(out.as_bytes())
        .and_then(|()| writer.flush())
        .is_err()
    {
        return;
    }
    shared.replication.follower_attached();
    let mut last_ping = Instant::now();
    loop {
        match sub.live.recv_timeout(POLL_INTERVAL * 10) {
            Ok(record) => {
                let ship_span = shared.recorder.span("registry", "journal_ship");
                let ok = writer
                    .write_all(format!("{}\n", replication::render_record(&record)).as_bytes())
                    .and_then(|()| writer.flush())
                    .is_ok();
                drop(ship_span);
                if !ok {
                    break;
                }
                shared.replication.note_shipped();
            }
            Err(mpsc::RecvTimeoutError::Timeout) => {
                if shared.shutting_down() {
                    break;
                }
                if last_ping.elapsed() >= Duration::from_secs(1) {
                    let ping = replication::render_ping(
                        shared.registry.epoch(),
                        shared.registry.next_seq().saturating_sub(1),
                    );
                    if writer
                        .write_all(format!("{ping}\n").as_bytes())
                        .and_then(|()| writer.flush())
                        .is_err()
                    {
                        break;
                    }
                    last_ping = Instant::now();
                }
            }
            Err(mpsc::RecvTimeoutError::Disconnected) => break,
        }
    }
    shared.replication.follower_detached();
}

/// Why one follower connection attempt ended.
enum FollowEnd {
    /// Reconnect and resubscribe from the current `next_seq`.
    Retry,
    /// Stop following: shutdown, or this node is no longer a follower.
    Stop,
}

/// The warm standby's replay thread: connect, `SYNC`, apply every `SHIP`
/// frame through the registry, reconnect (resubscribing from the exact
/// sequence it needs next) on any gap or stream loss, and auto-promote if
/// the primary stays silent past `promote_timeout_ms`.
fn follower_loop(shared: &Arc<Shared>) {
    let Some(source) = shared.replication.source().map(str::to_owned) else {
        return;
    };
    let promote_after = shared.config.promote_timeout_ms.map(Duration::from_millis);
    let mut last_contact = Instant::now();
    loop {
        if stop_following(shared) {
            return;
        }
        match follow_once(shared, &source, promote_after, &mut last_contact) {
            FollowEnd::Stop => return,
            FollowEnd::Retry => {
                shared.replication.set_connected(false);
                if promote_if_silent(shared, promote_after, last_contact) {
                    return;
                }
                std::thread::sleep(POLL_INTERVAL);
            }
        }
    }
}

fn stop_following(shared: &Arc<Shared>) -> bool {
    shared.shutting_down() || !shared.replication.is_follower()
}

/// Fires the promote timeout if the primary has been silent too long.
/// Returns true when this node just became primary.
fn promote_if_silent(
    shared: &Arc<Shared>,
    promote_after: Option<Duration>,
    last_contact: Instant,
) -> bool {
    let Some(after) = promote_after else {
        return false;
    };
    if last_contact.elapsed() < after {
        return false;
    }
    match promote_self(shared) {
        Ok(epoch) => {
            eprintln!(
                "ringrt-service: primary silent for {} ms; promoted to epoch {epoch}",
                last_contact.elapsed().as_millis()
            );
            true
        }
        Err(e) => {
            eprintln!("ringrt-service: auto-promotion failed: {e}");
            false
        }
    }
}

/// One connect → SYNC → replay cycle against the primary.
fn follow_once(
    shared: &Arc<Shared>,
    source: &str,
    promote_after: Option<Duration>,
    last_contact: &mut Instant,
) -> FollowEnd {
    let Ok(stream) = TcpStream::connect(source) else {
        return FollowEnd::Retry;
    };
    if stream.set_read_timeout(Some(POLL_INTERVAL * 10)).is_err() {
        return FollowEnd::Retry;
    }
    let Ok(mut writer) = stream.try_clone() else {
        return FollowEnd::Retry;
    };
    let hello = replication::sync_request(
        shared.registry.epoch(),
        shared.registry.next_seq().max(1),
        shared.registry.cluster_id(),
    );
    if writer
        .write_all(format!("{hello}\n").as_bytes())
        .and_then(|()| writer.flush())
        .is_err()
    {
        return FollowEnd::Retry;
    }
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    // Header first; everything after it is SHIP frames applied under the
    // epoch the header carried.
    let mut stream_epoch: Option<u64> = None;
    loop {
        match reader.read_line(&mut line) {
            Ok(0) => return FollowEnd::Retry,
            Ok(_) => {
                let frame = line.trim_end().to_owned();
                line.clear();
                *last_contact = Instant::now();
                // A promotion (PROMOTE command or silence timeout) can
                // land between frames; the moment this node stops being a
                // follower, nothing further from the old primary may be
                // applied.
                if stop_following(shared) {
                    return FollowEnd::Stop;
                }
                let Some(epoch) = stream_epoch else {
                    match replication::parse_sync_header(&frame) {
                        Ok(header) => {
                            // A head behind our own journal means the
                            // primary never produced records we hold:
                            // diverged histories, not a lagging follower.
                            // Refuse rather than let the overlap be
                            // misread as duplicates.
                            let next = shared.registry.next_seq();
                            if header.head.saturating_add(1) < next {
                                eprintln!(
                                    "ringrt-service: {source} advertises head {} behind our \
                                     journal (next_seq {next}); refusing divergent stream",
                                    header.head
                                );
                                shared.replication.note_resync();
                                return FollowEnd::Retry;
                            }
                            // Adopt the primary's journal identity on
                            // first contact; refuse a stream whose
                            // identity conflicts with the one we already
                            // replicated under (the primary should have
                            // fenced us, but an old primary may not know
                            // the cluster= key).
                            let local_cluster = shared.registry.cluster_id();
                            if header.cluster != 0 && local_cluster != 0 {
                                if header.cluster != local_cluster {
                                    eprintln!(
                                        "ringrt-service: {source} ships cluster {} but this \
                                         journal belongs to cluster {local_cluster}; refusing",
                                        header.cluster
                                    );
                                    shared.replication.note_resync();
                                    return FollowEnd::Retry;
                                }
                            } else if header.cluster != 0
                                && shared.registry.set_cluster_id(header.cluster).is_err()
                            {
                                return FollowEnd::Retry;
                            }
                            if header.epoch > shared.registry.epoch()
                                && shared.registry.set_epoch(header.epoch).is_err()
                            {
                                return FollowEnd::Retry;
                            }
                            shared.replication.note_head(header.head);
                            shared.replication.set_connected(true);
                            stream_epoch = Some(header.epoch);
                        }
                        Err(refusal) => {
                            eprintln!("ringrt-service: SYNC refused by {source}: {refusal}");
                            shared.replication.note_resync();
                            return FollowEnd::Retry;
                        }
                    }
                    continue;
                };
                match apply_ship_frame(shared, &frame, epoch, &mut reader) {
                    Ok(()) => {}
                    Err(()) => {
                        shared.replication.note_resync();
                        return FollowEnd::Retry;
                    }
                }
            }
            Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {
                if stop_following(shared) {
                    return FollowEnd::Stop;
                }
                if promote_if_silent(shared, promote_after, *last_contact) {
                    return FollowEnd::Stop;
                }
            }
            Err(_) => return FollowEnd::Retry,
        }
    }
}

/// Applies one ship frame on the follower under the epoch the stream
/// synced at. `Err(())` forces a resync — the reconnect path resubscribes
/// from exactly `next_seq`, so dropped, duplicated, and reordered frames
/// all converge back to the primary's history. Every apply is fenced by
/// `stream_epoch` inside the registry lock, so a promotion racing with an
/// in-flight frame can never let the superseded primary's record into the
/// promoted journal.
fn apply_ship_frame(
    shared: &Arc<Shared>,
    frame: &str,
    stream_epoch: u64,
    reader: &mut BufReader<TcpStream>,
) -> Result<(), ()> {
    match replication::parse_ship_frame(frame) {
        Ok(ShipFrame::Record(record)) => {
            let replay_span = shared.recorder.span("registry", "journal_replay");
            let outcome = shared
                .registry
                .apply_replicated_fenced(&record, stream_epoch);
            drop(replay_span);
            match outcome {
                Ok(ReplicatedApply::Applied { seq }) => {
                    shared.replication.note_head(seq);
                    shared.replication.note_applied(seq);
                    Ok(())
                }
                // Replays after a reconnect overlap the tail we already
                // hold; duplicates are the protocol working as designed.
                Ok(ReplicatedApply::Duplicate { .. }) => Ok(()),
                Ok(ReplicatedApply::Gap { .. }) => Err(()),
                Err(e) => {
                    eprintln!("ringrt-service: shipped record refused: {e}");
                    Err(())
                }
            }
        }
        Ok(ShipFrame::Snapshot { seq, lines }) => {
            let text = read_snapshot_body(shared, reader, lines).ok_or(())?;
            match shared.registry.install_snapshot_fenced(&text, stream_epoch) {
                Ok(_) => {
                    shared.replication.note_head(seq);
                    shared.replication.note_snapshot(seq);
                    Ok(())
                }
                Err(e) => {
                    eprintln!("ringrt-service: shipped snapshot rejected: {e}");
                    Err(())
                }
            }
        }
        Ok(ShipFrame::Ping { epoch, head }) => {
            // A ping from a different epoch than the stream synced at
            // means either side changed identity mid-stream; drop the
            // connection and let the SYNC fence sort it out.
            if epoch != stream_epoch {
                eprintln!(
                    "ringrt-service: ping epoch {epoch} does not match stream epoch \
                     {stream_epoch}; dropping connection"
                );
                return Err(());
            }
            shared.replication.note_head(head);
            Ok(())
        }
        Err(e) => {
            eprintln!("ringrt-service: unparseable ship frame: {e}");
            Err(())
        }
    }
}

/// Reads the `lines` raw snapshot lines following a snapshot frame.
fn read_snapshot_body(
    shared: &Arc<Shared>,
    reader: &mut BufReader<TcpStream>,
    lines: u64,
) -> Option<String> {
    let mut text = String::new();
    let mut line = String::new();
    let mut got = 0u64;
    while got < lines {
        match reader.read_line(&mut line) {
            Ok(0) => return None,
            Ok(_) => {
                text.push_str(&line);
                if !line.ends_with('\n') {
                    text.push('\n');
                }
                line.clear();
                got += 1;
            }
            Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {
                if shared.shutting_down() {
                    return None;
                }
            }
            Err(_) => return None,
        }
    }
    Some(text)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufRead;

    struct Client {
        reader: BufReader<TcpStream>,
        writer: TcpStream,
    }

    impl Client {
        fn connect(addr: SocketAddr) -> Client {
            let stream = TcpStream::connect(addr).expect("connect");
            let writer = stream.try_clone().expect("clone");
            Client {
                reader: BufReader::new(stream),
                writer,
            }
        }

        fn roundtrip(&mut self, line: &str) -> String {
            self.writer
                .write_all(format!("{line}\n").as_bytes())
                .expect("send");
            let mut resp = String::new();
            self.reader.read_line(&mut resp).expect("recv");
            resp.trim_end().to_owned()
        }
    }

    fn test_server(workers: usize, queue_depth: usize) -> ServerHandle {
        spawn(ServiceConfig {
            addr: "127.0.0.1:0".to_owned(),
            workers,
            queue_depth,
            ..ServiceConfig::default()
        })
        .expect("spawn server")
    }

    #[test]
    fn ping_and_malformed_lines() {
        let server = test_server(1, 4);
        let mut c = Client::connect(server.addr());
        assert_eq!(c.roundtrip("PING"), "OK cmd=ping");
        assert!(c.roundtrip("NONSENSE").starts_with("ERR"));
        assert!(c.roundtrip("").starts_with("ERR"));
        server.join();
    }

    #[test]
    fn check_roundtrip_and_cache() {
        let server = test_server(2, 8);
        let mut c = Client::connect(server.addr());
        let first = c.roundtrip("CHECK mbps=16 set=20,20000;50,60000");
        assert!(first.contains("schedulable=true"), "{first}");
        assert!(first.ends_with("cached=false"), "{first}");
        let second = c.roundtrip("CHECK mbps=16 set=50,60000;20,20000"); // reordered
        assert!(second.ends_with("cached=true"), "{second}");
        let stats = c.roundtrip("STATS");
        assert!(stats.contains("cache_hits=1"), "{stats}");
        assert!(stats.contains("cache_entries=1"), "{stats}");
        server.join();
    }

    #[test]
    fn busy_when_queue_full() {
        let server = test_server(1, 1);
        let addr = server.addr();
        // Occupy the single worker…
        let blocker = std::thread::spawn(move || {
            let mut c = Client::connect(addr);
            c.roundtrip("SLEEP ms=600")
        });
        std::thread::sleep(Duration::from_millis(150));
        // …fill the one queue slot…
        let filler = std::thread::spawn(move || {
            let mut c = Client::connect(addr);
            c.roundtrip("SLEEP ms=100")
        });
        std::thread::sleep(Duration::from_millis(150));
        // …and the next request must be shed, not left hanging.
        let mut c = Client::connect(addr);
        let resp = c.roundtrip("SLEEP ms=1");
        assert!(resp.starts_with("BUSY"), "{resp}");
        assert!(resp.contains("queue_capacity=1"), "{resp}");
        assert_eq!(blocker.join().unwrap(), "OK cmd=sleep ms=600");
        assert_eq!(filler.join().unwrap(), "OK cmd=sleep ms=100");
        let stats = c.roundtrip("STATS");
        assert!(stats.contains("busy=1"), "{stats}");
        server.join();
    }

    #[test]
    fn graceful_shutdown_answers_in_flight_work() {
        let server = test_server(1, 4);
        let addr = server.addr();
        let inflight = std::thread::spawn(move || {
            let mut c = Client::connect(addr);
            c.roundtrip("SLEEP ms=300")
        });
        std::thread::sleep(Duration::from_millis(100));
        server.shutdown();
        assert_eq!(inflight.join().unwrap(), "OK cmd=sleep ms=300");
        server.join();
    }

    #[test]
    fn shutdown_command_closes_and_stops_accepting() {
        let server = test_server(1, 4);
        let addr = server.addr();
        let mut c = Client::connect(addr);
        assert_eq!(c.roundtrip("SHUTDOWN"), "OK cmd=shutdown");
        server.join();
        assert!(TcpStream::connect(addr).is_err(), "still accepting");
    }

    #[test]
    fn registry_commands_roundtrip() {
        let server = test_server(1, 4);
        let mut c = Client::connect(server.addr());
        assert_eq!(
            c.roundtrip("REGISTER ring=lab protocol=fddi mbps=100 stations=16"),
            "OK cmd=register ring=lab protocol=fddi mbps=100 stations=16"
        );
        assert!(c
            .roundtrip("REGISTER ring=lab protocol=fddi mbps=100")
            .starts_with("ERR ring `lab` is already registered"));
        let admit = c.roundtrip("ADMIT ring=lab stream=cam period_ms=20 bits=100000");
        assert!(admit.contains("schedulable=true admitted=true"), "{admit}");
        assert!(admit.contains("streams=1"), "{admit}");
        // Duplicate stream names are rejected with a structured error.
        let dup = c.roundtrip("ADMIT ring=lab stream=cam period_ms=30 bits=1000");
        assert_eq!(dup, "ERR duplicate stream `cam` in ring `lab`");
        let admit2 = c.roundtrip("ADMIT ring=lab stream=mic period_ms=50 bits=200000");
        assert!(admit2.contains("incremental=true"), "{admit2}");
        let show = c.roundtrip("SHOW ring=lab");
        assert!(
            show.starts_with("OK cmd=show ring=lab protocol=fddi"),
            "{show}"
        );
        assert!(show.contains("set=cam:20,100000;mic:50,200000"), "{show}");
        assert_eq!(c.roundtrip("SHOW"), "OK cmd=show rings=1 names=lab");
        let check = c.roundtrip("CHECK ring=lab");
        assert!(check.contains("schedulable=true"), "{check}");
        assert!(check.contains("evaluations="), "{check}");
        let stats = c.roundtrip("STATS");
        assert!(stats.contains("rings=1"), "{stats}");
        assert!(stats.contains("registry_streams=2"), "{stats}");
        assert!(stats.contains("incremental_tests=1"), "{stats}");
        let rm = c.roundtrip("REMOVE ring=lab stream=cam");
        assert!(rm.contains("streams=1"), "{rm}");
        assert_eq!(
            c.roundtrip("UNREGISTER ring=lab"),
            "OK cmd=unregister ring=lab"
        );
        assert!(c.roundtrip("SHOW ring=lab").starts_with("ERR unknown ring"));
        server.join();
    }

    #[test]
    fn unschedulable_admit_not_applied() {
        let server = test_server(1, 4);
        let mut c = Client::connect(server.addr());
        c.roundtrip("REGISTER ring=r protocol=fddi mbps=100 stations=8");
        c.roundtrip("ADMIT ring=r stream=ok period_ms=20 bits=100000");
        let hog = c.roundtrip("ADMIT ring=r stream=hog period_ms=100 bits=12000000");
        assert!(hog.contains("schedulable=false admitted=false"), "{hog}");
        assert!(hog.contains("streams=1"), "{hog}");
        // The hog can be retried under another name; the ring is intact.
        let show = c.roundtrip("SHOW ring=r");
        assert!(show.contains("streams=1"), "{show}");
        server.join();
    }

    #[test]
    fn batch_answers_in_order_with_one_write() {
        let server = test_server(2, 8);
        let mut c = Client::connect(server.addr());
        // One write carrying the header and all three pipelined requests.
        c.writer
            .write_all(b"BATCH 3\nPING\nCHECK mbps=16 set=20,20000\nPING\n")
            .expect("send batch");
        let mut responses = Vec::new();
        for _ in 0..3 {
            let mut r = String::new();
            c.reader.read_line(&mut r).expect("recv");
            responses.push(r.trim_end().to_owned());
        }
        assert_eq!(responses[0], "OK cmd=ping");
        assert!(responses[1].contains("cmd=check"), "{}", responses[1]);
        assert_eq!(responses[2], "OK cmd=ping");
        // Nested batches are refused but do not kill the connection.
        c.writer
            .write_all(b"BATCH 2\nBATCH 2\nPING\n")
            .expect("send nested");
        let mut nested = Vec::new();
        for _ in 0..2 {
            let mut r = String::new();
            c.reader.read_line(&mut r).expect("recv");
            nested.push(r.trim_end().to_owned());
        }
        assert!(nested[0].starts_with("ERR nested BATCH"), "{}", nested[0]);
        assert_eq!(nested[1], "OK cmd=ping");
        assert_eq!(c.roundtrip("PING"), "OK cmd=ping");
        server.join();
    }

    #[test]
    fn batch_overlaps_sleeps_and_answers_in_submission_order() {
        let server = test_server(4, 16);
        let mut c = Client::connect(server.addr());
        // Four 200 ms sleeps: serial execution would need ≥800 ms; the
        // parallel batch path should finish in roughly one sleep.
        let started = Instant::now();
        c.writer
            .write_all(b"BATCH 5\nSLEEP ms=200\nSLEEP ms=200\nPING\nSLEEP ms=200\nSLEEP ms=200\n")
            .expect("send batch");
        let mut responses = Vec::new();
        for _ in 0..5 {
            let mut r = String::new();
            c.reader.read_line(&mut r).expect("recv");
            responses.push(r.trim_end().to_owned());
        }
        let elapsed = started.elapsed();
        assert_eq!(responses[0], "OK cmd=sleep ms=200");
        assert_eq!(responses[1], "OK cmd=sleep ms=200");
        assert_eq!(responses[2], "OK cmd=ping");
        assert_eq!(responses[3], "OK cmd=sleep ms=200");
        assert_eq!(responses[4], "OK cmd=sleep ms=200");
        assert!(
            elapsed < Duration::from_millis(700),
            "batch took {elapsed:?}, sleeps did not overlap"
        );
        let stats = c.roundtrip("STATS");
        assert!(stats.contains("queue_peak="), "{stats}");
        assert!(stats.contains("worker_jobs="), "{stats}");
        server.join();
    }

    #[test]
    fn batch_runs_overflow_inline_instead_of_shedding() {
        // One worker, one queue slot: a six-deep batch vastly overflows the
        // queue, but batch positions must never answer BUSY — overflow runs
        // inline on the connection thread.
        let server = test_server(1, 1);
        let mut c = Client::connect(server.addr());
        let mut batch = String::from("BATCH 6\n");
        for _ in 0..6 {
            batch.push_str("SLEEP ms=10\n");
        }
        c.writer.write_all(batch.as_bytes()).expect("send batch");
        for i in 0..6 {
            let mut r = String::new();
            c.reader.read_line(&mut r).expect("recv");
            assert_eq!(r.trim_end(), "OK cmd=sleep ms=10", "position {i}");
        }
        let stats = c.roundtrip("STATS");
        assert!(stats.contains(" busy=0"), "{stats}");
        server.join();
    }

    #[test]
    fn abu_roundtrip_is_cached_and_deterministic() {
        let server = spawn(ServiceConfig {
            addr: "127.0.0.1:0".to_owned(),
            workers: 2,
            queue_depth: 8,
            exec_threads: Some(4),
            ..ServiceConfig::default()
        })
        .expect("spawn server");
        let mut c = Client::connect(server.addr());
        let line = "ABU mbps=100 stations=8 samples=20 seed=5 protocol=fddi deadline_ms=30000";
        let first = c.roundtrip(line);
        assert!(first.starts_with("OK cmd=abu"), "{first}");
        assert!(first.contains(" abu_mean="), "{first}");
        assert!(first.ends_with("cached=false"), "{first}");
        let second = c.roundtrip(line);
        assert!(second.ends_with("cached=true"), "{second}");
        // The cached body is the first body verbatim: pool-width
        // determinism is what makes ABU cacheable at all.
        assert_eq!(
            first.trim_end_matches("cached=false"),
            second.trim_end_matches("cached=true")
        );
        let other_seed = c
            .roundtrip("ABU mbps=100 stations=8 samples=20 seed=6 protocol=fddi deadline_ms=30000");
        assert!(other_seed.ends_with("cached=false"), "{other_seed}");
        let stats = c.roundtrip("STATS");
        assert!(stats.contains("exec_threads=4"), "{stats}");
        // Two executed requests plus one cache hit, all latency-counted.
        assert!(stats.contains("abu_count=3"), "{stats}");
        server.join();
    }

    #[test]
    fn ring_mutation_invalidates_cached_ring_analyses() {
        let server = test_server(2, 8);
        let mut c = Client::connect(server.addr());
        c.roundtrip("REGISTER ring=r protocol=fddi mbps=100 stations=8");
        c.roundtrip("ADMIT ring=r stream=a period_ms=20 bits=100000");
        let first = c.roundtrip("SIMULATE ring=r seconds=0.1 seed=3");
        assert!(first.ends_with("cached=false"), "{first}");
        let hit = c.roundtrip("SIMULATE ring=r seconds=0.1 seed=3");
        assert!(hit.ends_with("cached=true"), "{hit}");
        // Remove and re-admit the *identical* stream: the set is unchanged
        // but the ring's generation moved, so the entry must be stale —
        // without any EVICT.
        c.roundtrip("REMOVE ring=r stream=a");
        c.roundtrip("ADMIT ring=r stream=a period_ms=20 bits=100000");
        let after = c.roundtrip("SIMULATE ring=r seconds=0.1 seed=3");
        assert!(after.ends_with("cached=false"), "{after}");
        // Stability: the re-admitted state caches normally from here on.
        let again = c.roundtrip("SIMULATE ring=r seconds=0.1 seed=3");
        assert!(again.ends_with("cached=true"), "{again}");
        server.join();
    }

    #[test]
    fn evict_clears_cache_and_counts() {
        let server = test_server(1, 4);
        let mut c = Client::connect(server.addr());
        c.roundtrip("CHECK mbps=16 set=20,20000");
        c.roundtrip("CHECK mbps=16 set=20,30000");
        assert_eq!(c.roundtrip("EVICT"), "OK cmd=evict evicted=2");
        let stats = c.roundtrip("STATS");
        assert!(stats.contains("cache_entries=0"), "{stats}");
        assert!(stats.contains("cache_capacity="), "{stats}");
        // The next identical CHECK is a miss again.
        let again = c.roundtrip("CHECK mbps=16 set=20,20000");
        assert!(again.ends_with("cached=false"), "{again}");
        server.join();
    }

    #[test]
    fn saturation_on_stored_ring() {
        let server = test_server(2, 8);
        let mut c = Client::connect(server.addr());
        c.roundtrip("REGISTER ring=r protocol=fddi mbps=100 stations=8");
        c.roundtrip("ADMIT ring=r stream=a period_ms=20 bits=100000");
        let sat = c.roundtrip("SATURATION ring=r");
        assert!(sat.contains("cmd=saturation"), "{sat}");
        assert!(sat.contains(" scale="), "{sat}");
        assert!(c
            .roundtrip("SATURATION ring=ghost")
            .starts_with("ERR unknown ring"));
        server.join();
    }

    fn temp_state_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "ringrt-serve-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    /// Spawns a persistent primary and a follower replicating it.
    fn replicated_pair(tag: &str) -> (ServerHandle, ServerHandle, PathBuf, PathBuf) {
        let primary_dir = temp_state_dir(&format!("{tag}-p"));
        let follower_dir = temp_state_dir(&format!("{tag}-f"));
        let primary = spawn(ServiceConfig {
            addr: "127.0.0.1:0".to_owned(),
            workers: 1,
            queue_depth: 8,
            state_dir: Some(primary_dir.clone()),
            ..ServiceConfig::default()
        })
        .expect("spawn primary");
        let follower = spawn(ServiceConfig {
            addr: "127.0.0.1:0".to_owned(),
            workers: 1,
            queue_depth: 8,
            state_dir: Some(follower_dir.clone()),
            follow: Some(primary.addr().to_string()),
            ..ServiceConfig::default()
        })
        .expect("spawn follower");
        (primary, follower, primary_dir, follower_dir)
    }

    /// Polls `line` against the follower until `want` appears (replication
    /// is asynchronous) or five seconds pass.
    fn await_contains(c: &mut Client, line: &str, want: &str) -> String {
        let deadline = Instant::now() + Duration::from_secs(5);
        loop {
            let got = c.roundtrip(line);
            if got.contains(want) {
                return got;
            }
            assert!(
                Instant::now() < deadline,
                "timed out waiting for {want:?}; last answer: {got}"
            );
            std::thread::sleep(Duration::from_millis(25));
        }
    }

    #[test]
    fn follower_redirects_mutations_and_answers_reads() {
        let (primary, follower, pd, fd) = replicated_pair("redirect");
        let mut p = Client::connect(primary.addr());
        let mut f = Client::connect(follower.addr());
        p.roundtrip("REGISTER ring=lab protocol=fddi mbps=100 stations=8");
        p.roundtrip("ADMIT ring=lab stream=cam period_ms=20 bits=100000");
        // The standby catches up and answers the same CHECK the primary does.
        let on_follower = await_contains(&mut f, "CHECK ring=lab", "schedulable=true");
        assert_eq!(on_follower, p.roundtrip("CHECK ring=lab"));
        // A single mutation is redirected, not erred.
        let redirect = f.roundtrip("ADMIT ring=lab stream=mic period_ms=50 bits=1000");
        assert_eq!(
            redirect,
            format!("READONLY cmd=admit primary={} epoch=1", primary.addr())
        );
        // In a BATCH, only the mutating frame is redirected.
        f.writer
            .write_all(b"BATCH 3\nPING\nREMOVE ring=lab stream=cam\nSHOW ring=lab\n")
            .expect("send batch");
        let mut got = Vec::new();
        for _ in 0..3 {
            let mut r = String::new();
            f.reader.read_line(&mut r).expect("recv");
            got.push(r.trim_end().to_owned());
        }
        assert_eq!(got[0], "OK cmd=ping");
        assert!(
            got[1].starts_with("READONLY cmd=remove primary="),
            "{}",
            got[1]
        );
        assert!(got[2].contains("set=cam:20,100000"), "{}", got[2]);
        // The redirects are visible as their own counter, not as errors.
        let stats = f.roundtrip("STATS");
        assert!(stats.contains(" readonly=2"), "{stats}");
        assert!(stats.contains(" role=follower"), "{stats}");
        let rep = f.roundtrip("REPLICATION");
        assert!(rep.contains("role=follower"), "{rep}");
        assert!(rep.contains("epoch=1"), "{rep}");
        // STATS RESET re-seeds the lag window with the live lag.
        assert_eq!(f.roundtrip("STATS RESET"), "OK cmd=stats_reset");
        let after = f.roundtrip("REPLICATION");
        assert!(after.contains(" lag=0 lag_peak=0"), "{after}");
        follower.join();
        primary.join();
        let _ = std::fs::remove_dir_all(pd);
        let _ = std::fs::remove_dir_all(fd);
    }

    #[test]
    fn sync_from_a_stale_epoch_is_fenced() {
        let dir = temp_state_dir("fence");
        let server = spawn(ServiceConfig {
            addr: "127.0.0.1:0".to_owned(),
            workers: 1,
            queue_depth: 4,
            state_dir: Some(dir.clone()),
            ..ServiceConfig::default()
        })
        .expect("spawn server");
        let mut c = Client::connect(server.addr());
        // Serving epoch is 1 (first boot). A requester claiming any other
        // nonzero epoch replicated some other history: refuse with the
        // fencing error, naming both epochs.
        assert_eq!(
            c.roundtrip("SYNC epoch=99 seq=1"),
            "ERR cmd=sync fenced requester_epoch=99 epoch=1"
        );
        // The connection stays usable after a refused SYNC.
        assert_eq!(c.roundtrip("PING"), "OK cmd=ping");
        // SYNC cannot hide inside a BATCH: the stream would swallow the
        // remaining framed replies.
        c.writer
            .write_all(b"BATCH 2\nSYNC seq=1\nPING\n")
            .expect("send batch");
        let mut got = Vec::new();
        for _ in 0..2 {
            let mut r = String::new();
            c.reader.read_line(&mut r).expect("recv");
            got.push(r.trim_end().to_owned());
        }
        assert_eq!(got[0], "ERR SYNC is not allowed inside BATCH");
        assert_eq!(got[1], "OK cmd=ping");
        server.join();
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn in_memory_server_refuses_sync_and_promote() {
        let server = test_server(1, 4);
        let mut c = Client::connect(server.addr());
        assert_eq!(
            c.roundtrip("SYNC seq=1"),
            "ERR cmd=sync journal shipping requires a persistent state dir"
        );
        assert_eq!(
            c.roundtrip("PROMOTE"),
            "ERR cmd=promote already primary epoch=0"
        );
        let rep = c.roundtrip("REPLICATION");
        assert!(rep.contains("role=primary"), "{rep}");
        assert!(rep.contains("source=-"), "{rep}");
        server.join();
    }

    #[test]
    fn promote_fences_a_new_epoch_and_enables_mutations() {
        let (primary, follower, pd, fd) = replicated_pair("promote");
        let mut p = Client::connect(primary.addr());
        p.roundtrip("REGISTER ring=ring protocol=fddi mbps=100 stations=8");
        p.roundtrip("ADMIT ring=ring stream=a period_ms=20 bits=100000");
        let mut f = Client::connect(follower.addr());
        await_contains(&mut f, "SHOW ring=ring", "streams=1");
        // Primary dies; the operator promotes the standby.
        assert_eq!(p.roundtrip("SHUTDOWN"), "OK cmd=shutdown");
        primary.join();
        let promoted = f.roundtrip("PROMOTE");
        assert_eq!(promoted, "OK cmd=promote epoch=2 applied_seq=2");
        assert_eq!(
            f.roundtrip("PROMOTE"),
            "ERR cmd=promote already primary epoch=2"
        );
        // Mutations now apply locally instead of redirecting.
        let admit = f.roundtrip("ADMIT ring=ring stream=b period_ms=50 bits=200000");
        assert!(admit.contains("admitted=true"), "{admit}");
        let rep = f.roundtrip("REPLICATION");
        assert!(rep.contains("role=primary"), "{rep}");
        assert!(rep.contains("epoch=2"), "{rep}");
        assert!(rep.contains("promotions=1"), "{rep}");
        follower.join();
        let _ = std::fs::remove_dir_all(pd);
        let _ = std::fs::remove_dir_all(fd);
    }

    /// Spawns a server with arbitrary config tweaks on top of the test
    /// defaults (two workers, queue depth 8, ephemeral port).
    fn custom_server(mutate: impl FnOnce(&mut ServiceConfig)) -> ServerHandle {
        let mut config = ServiceConfig {
            addr: "127.0.0.1:0".to_owned(),
            workers: 2,
            queue_depth: 8,
            ..ServiceConfig::default()
        };
        mutate(&mut config);
        spawn(config).expect("spawn server")
    }

    #[cfg(target_os = "linux")]
    #[test]
    fn event_front_roundtrips_inline_and_queued_requests() {
        let server = custom_server(|c| {
            c.frontend = Frontend::Event;
            c.event_loops = 2;
        });
        let mut c = Client::connect(server.addr());
        assert_eq!(c.roundtrip("PING"), "OK cmd=ping");
        let first = c.roundtrip("CHECK mbps=16 set=20,20000;50,60000");
        assert!(first.contains("schedulable=true"), "{first}");
        assert!(first.ends_with("cached=false"), "{first}");
        let second = c.roundtrip("CHECK mbps=16 set=50,60000;20,20000");
        assert!(second.ends_with("cached=true"), "{second}");
        // Registry mutations run inline on the loop, same as the blocking
        // front end runs them on the connection thread.
        assert_eq!(
            c.roundtrip("REGISTER ring=ev protocol=fddi mbps=100 stations=8"),
            "OK cmd=register ring=ev protocol=fddi mbps=100 stations=8"
        );
        let admit = c.roundtrip("ADMIT ring=ev stream=a period_ms=20 bits=100000");
        assert!(admit.contains("admitted=true"), "{admit}");
        let stats = c.roundtrip("STATS");
        assert!(stats.contains("frontend=event"), "{stats}");
        assert!(stats.contains("connections_open=1"), "{stats}");
        assert!(stats.contains("loop_wakeups="), "{stats}");
        server.join();
    }

    #[cfg(target_os = "linux")]
    #[test]
    fn event_front_pipelines_in_order() {
        let server = custom_server(|c| c.frontend = Frontend::Event);
        let mut c = Client::connect(server.addr());
        // Two queue-bound analyses and an inline PING in one write: the
        // replies must come back in submission order even though the
        // analyses overlap on the worker pool.
        c.writer
            .write_all(b"CHECK mbps=16 set=20,20000\nPING\nCHECK mbps=16 set=50,60000\n")
            .expect("send pipeline");
        let mut got = Vec::new();
        for _ in 0..3 {
            let mut r = String::new();
            c.reader.read_line(&mut r).expect("recv");
            got.push(r.trim_end().to_owned());
        }
        assert!(got[0].starts_with("OK cmd=check"), "{}", got[0]);
        assert_eq!(got[1], "OK cmd=ping");
        assert!(got[2].starts_with("OK cmd=check"), "{}", got[2]);
        server.join();
    }

    #[cfg(target_os = "linux")]
    #[test]
    fn event_front_batch_is_one_entry_answered_in_order() {
        let server = custom_server(|c| c.frontend = Frontend::Event);
        let mut c = Client::connect(server.addr());
        c.writer
            .write_all(b"BATCH 3\nSLEEP ms=80\nPING\nCHECK mbps=16 set=20,20000\n")
            .expect("send batch");
        let mut got = Vec::new();
        for _ in 0..3 {
            let mut r = String::new();
            c.reader.read_line(&mut r).expect("recv");
            got.push(r.trim_end().to_owned());
        }
        assert_eq!(got[0], "OK cmd=sleep ms=80");
        assert_eq!(got[1], "OK cmd=ping");
        assert!(got[2].starts_with("OK cmd=check"), "{}", got[2]);
        // Nested framing is refused per-position, like the blocking front.
        c.writer
            .write_all(b"BATCH 2\nBATCH 2\nPING\n")
            .expect("send nested");
        let mut got = Vec::new();
        for _ in 0..2 {
            let mut r = String::new();
            c.reader.read_line(&mut r).expect("recv");
            got.push(r.trim_end().to_owned());
        }
        assert_eq!(got[0], "ERR nested BATCH is not allowed");
        assert_eq!(got[1], "OK cmd=ping");
        server.join();
    }

    fn assert_sheds_past_max_conns(server: &ServerHandle) {
        let mut first = Client::connect(server.addr());
        assert_eq!(first.roundtrip("PING"), "OK cmd=ping");
        // The shed connection gets one definite BUSY line, then EOF.
        let shed = TcpStream::connect(server.addr()).expect("connect");
        let mut reader = BufReader::new(shed);
        let mut line = String::new();
        reader.read_line(&mut line).expect("read BUSY line");
        assert_eq!(line.trim_end(), "BUSY max_conns=1");
        line.clear();
        let n = reader.read_line(&mut line).expect("read EOF");
        assert_eq!(n, 0, "shed connection must be closed, got {line:?}");
        // The stats record the shed and still count one open connection.
        drop(reader);
        std::thread::sleep(Duration::from_millis(50));
        let stats = first.roundtrip("STATS");
        assert!(stats.contains(" max_conns=1"), "{stats}");
        assert!(stats.contains("accept_shed=1"), "{stats}");
        assert!(stats.contains("connections_open=1"), "{stats}");
    }

    #[test]
    fn threads_front_sheds_beyond_max_conns() {
        let server = custom_server(|c| c.max_conns = 1);
        assert_sheds_past_max_conns(&server);
        server.join();
    }

    #[cfg(target_os = "linux")]
    #[test]
    fn event_front_sheds_beyond_max_conns() {
        let server = custom_server(|c| {
            c.max_conns = 1;
            c.frontend = Frontend::Event;
        });
        assert_sheds_past_max_conns(&server);
        server.join();
    }

    fn assert_read_deadline_closes(server: &ServerHandle) {
        let stream = TcpStream::connect(server.addr()).expect("connect");
        let mut writer = stream.try_clone().expect("clone");
        // A slow loris: bytes trickle in but the newline never comes.
        writer.write_all(b"CHE").expect("partial write");
        let mut reader = BufReader::new(stream);
        let mut line = String::new();
        reader.read_line(&mut line).expect("read ERR line");
        assert_eq!(
            line.trim_end(),
            "ERR read deadline: partial line idle for 100 ms"
        );
        line.clear();
        let n = reader.read_line(&mut line).expect("read EOF");
        assert_eq!(n, 0, "stalled connection must be closed");
    }

    #[test]
    fn threads_front_closes_partial_line_at_read_deadline() {
        let server = custom_server(|c| c.read_deadline_ms = 100);
        assert_read_deadline_closes(&server);
        server.join();
    }

    #[cfg(target_os = "linux")]
    #[test]
    fn event_front_closes_partial_line_at_read_deadline() {
        let server = custom_server(|c| {
            c.read_deadline_ms = 100;
            c.frontend = Frontend::Event;
        });
        assert_read_deadline_closes(&server);
        let mut c = Client::connect(server.addr());
        let stats = c.roundtrip("STATS");
        assert!(stats.contains("read_deadline_closed=1"), "{stats}");
        server.join();
    }

    #[cfg(target_os = "linux")]
    #[test]
    fn event_front_closes_idle_connections() {
        let server = custom_server(|c| {
            c.idle_timeout_ms = Some(100);
            c.frontend = Frontend::Event;
        });
        let idle = TcpStream::connect(server.addr()).expect("connect");
        let mut reader = BufReader::new(idle);
        let mut line = String::new();
        // No request ever sent: the idle wheel reaps the connection.
        let n = reader.read_line(&mut line).expect("read EOF");
        assert_eq!(n, 0, "idle connection must be closed, got {line:?}");
        let mut c = Client::connect(server.addr());
        let stats = c.roundtrip("STATS");
        assert!(stats.contains("idle_closed=1"), "{stats}");
        server.join();
    }

    fn assert_oversized_line_rejected(server: &ServerHandle) {
        let stream = TcpStream::connect(server.addr()).expect("connect");
        let mut writer = stream.try_clone().expect("clone");
        let blob = vec![b'A'; MAX_LINE_BYTES + 64];
        writer.write_all(&blob).expect("send oversized");
        let mut reader = BufReader::new(stream);
        let mut line = String::new();
        reader.read_line(&mut line).expect("read ERR line");
        assert_eq!(
            line.trim_end(),
            format!("ERR line exceeds {MAX_LINE_BYTES} bytes")
        );
        line.clear();
        let n = reader.read_line(&mut line).expect("read EOF");
        assert_eq!(n, 0, "oversized-line connection must be closed");
    }

    #[test]
    fn threads_front_rejects_oversized_lines() {
        let server = test_server(1, 4);
        assert_oversized_line_rejected(&server);
        server.join();
    }

    #[cfg(target_os = "linux")]
    #[test]
    fn event_front_rejects_oversized_lines() {
        let server = custom_server(|c| c.frontend = Frontend::Event);
        assert_oversized_line_rejected(&server);
        let mut c = Client::connect(server.addr());
        let stats = c.roundtrip("STATS");
        assert!(stats.contains("oversized_rejected=1"), "{stats}");
        server.join();
    }

    #[cfg(target_os = "linux")]
    #[test]
    fn event_front_graceful_shutdown_answers_in_flight_work() {
        let server = custom_server(|c| c.frontend = Frontend::Event);
        let addr = server.addr();
        let inflight = std::thread::spawn(move || {
            let mut c = Client::connect(addr);
            c.roundtrip("SLEEP ms=300")
        });
        std::thread::sleep(Duration::from_millis(100));
        server.shutdown();
        assert_eq!(inflight.join().unwrap(), "OK cmd=sleep ms=300");
        server.join();
    }

    #[test]
    fn sync_refuses_a_mismatched_cluster_identity() {
        let dir = temp_state_dir("cluster-mismatch");
        let server = spawn(ServiceConfig {
            addr: "127.0.0.1:0".to_owned(),
            workers: 1,
            queue_depth: 4,
            state_dir: Some(dir.clone()),
            ..ServiceConfig::default()
        })
        .expect("spawn server");
        let mut c = Client::connect(server.addr());
        // The primary stamped its journal at boot; STATS exposes the id.
        let stats = c.roundtrip("STATS");
        let cluster: u64 = stats
            .split_whitespace()
            .find_map(|f| f.strip_prefix("cluster="))
            .expect("cluster= field in STATS")
            .parse()
            .expect("numeric cluster id");
        assert_ne!(cluster, 0, "primary must stamp a nonzero cluster id");
        // A requester whose journal carries a different identity is
        // replicating some other cluster's history: refuse to ship.
        let other = cluster ^ 1;
        assert_eq!(
            c.roundtrip(&format!("SYNC epoch=1 seq=1 cluster={other}")),
            format!("ERR cmd=sync cluster mismatch requester_cluster={other} cluster={cluster}")
        );
        // The connection survives the refusal.
        assert_eq!(c.roundtrip("PING"), "OK cmd=ping");
        // A fresh journal (cluster=0, also the pre-cluster wire default)
        // is allowed in and learns the identity from the header.
        let mut f = Client::connect(server.addr());
        let header = f.roundtrip("SYNC epoch=1 seq=1 cluster=0");
        assert!(header.starts_with("OK cmd=sync"), "{header}");
        assert!(header.contains(&format!("cluster={cluster}")), "{header}");
        drop(f);
        server.join();
        let _ = std::fs::remove_dir_all(dir);
    }

    #[cfg(target_os = "linux")]
    #[test]
    fn event_front_serves_sync_by_detaching_a_ship_thread() {
        let dir = temp_state_dir("event-sync");
        let server = spawn(ServiceConfig {
            addr: "127.0.0.1:0".to_owned(),
            workers: 1,
            queue_depth: 4,
            state_dir: Some(dir.clone()),
            frontend: Frontend::Event,
            ..ServiceConfig::default()
        })
        .expect("spawn server");
        let mut c = Client::connect(server.addr());
        c.roundtrip("REGISTER ring=s protocol=fddi mbps=100 stations=8");
        let mut f = Client::connect(server.addr());
        let header = f.roundtrip("SYNC epoch=1 seq=1");
        assert!(header.starts_with("OK cmd=sync epoch=1"), "{header}");
        assert!(header.contains("cluster="), "{header}");
        // The stream now ships the snapshot the registry journaled.
        let mut frame = String::new();
        f.reader.read_line(&mut frame).expect("first ship frame");
        assert!(frame.starts_with("SHIP"), "{frame}");
        drop(f);
        server.join();
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn deadline_expires_in_queue() {
        let server = test_server(1, 4);
        let addr = server.addr();
        let blocker = std::thread::spawn(move || {
            let mut c = Client::connect(addr);
            c.roundtrip("SLEEP ms=300")
        });
        std::thread::sleep(Duration::from_millis(100));
        let mut c = Client::connect(addr);
        let resp = c.roundtrip("CHECK mbps=16 set=20,20000 deadline_ms=50");
        assert!(resp.starts_with("ERR deadline expired"), "{resp}");
        blocker.join().unwrap();
        let stats = c.roundtrip("STATS");
        assert!(stats.contains("deadline_expired=1"), "{stats}");
        server.join();
    }
}
