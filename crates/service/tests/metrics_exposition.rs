//! End-to-end tests for the observability surface of a live server: the
//! `METRICS` Prometheus text exposition, the `TRACE` flight-recorder
//! export, and the `STATS RESET` measurement window.

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};

use ringrt_des::stats::DurationHistogram;
use ringrt_obs::prom::{parse_exposition, Sample};
use ringrt_obs::trace::validate_chrome_trace;
use ringrt_service::{spawn, ServerHandle, ServiceConfig};

struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    fn connect(addr: SocketAddr) -> Client {
        let stream = TcpStream::connect(addr).expect("connect");
        let writer = stream.try_clone().expect("clone");
        Client {
            reader: BufReader::new(stream),
            writer,
        }
    }

    fn send(&mut self, line: &str) {
        self.writer
            .write_all(format!("{line}\n").as_bytes())
            .expect("send");
    }

    fn read_line(&mut self) -> String {
        let mut resp = String::new();
        self.reader.read_line(&mut resp).expect("recv");
        resp.trim_end().to_owned()
    }

    fn roundtrip(&mut self, line: &str) -> String {
        self.send(line);
        self.read_line()
    }

    /// Sends `METRICS`, returning the header line and the `lines=<n>`
    /// exposition lines it announces.
    fn metrics(&mut self) -> (String, Vec<String>) {
        let header = self.roundtrip("METRICS");
        let count: usize = header
            .split(" lines=")
            .nth(1)
            .unwrap_or_else(|| panic!("no lines= in header: {header}"))
            .split_whitespace()
            .next()
            .unwrap()
            .parse()
            .expect("count parses");
        let body = (0..count).map(|_| self.read_line()).collect();
        (header, body)
    }

    /// Sends a `TRACE` line, returning the header and the single JSON
    /// body line that always follows it.
    fn trace(&mut self, line: &str) -> (String, String) {
        let header = self.roundtrip(line);
        assert!(header.starts_with("OK cmd=trace events="), "{header}");
        (header, self.read_line())
    }
}

fn test_server() -> ServerHandle {
    spawn(ServiceConfig {
        addr: "127.0.0.1:0".to_owned(),
        workers: 2,
        queue_depth: 8,
        ..ServiceConfig::default()
    })
    .expect("spawn server")
}

fn fetch_metrics(c: &mut Client) -> Vec<Sample> {
    let (header, body) = c.metrics();
    assert!(header.starts_with("OK cmd=metrics lines="), "{header}");
    parse_exposition(&body.join("\n")).expect("exposition must parse")
}

fn find<'a>(samples: &'a [Sample], name: &str) -> Vec<&'a Sample> {
    samples.iter().filter(|s| s.name == name).collect()
}

#[test]
fn metrics_exposition_is_wellformed_and_buckets_are_cumulative() {
    let server = test_server();
    let mut c = Client::connect(server.addr());
    let check = c.roundtrip("CHECK mbps=16 set=20,20000;50,60000");
    assert!(check.contains("schedulable=true"), "{check}");
    let samples = fetch_metrics(&mut c);

    // The headline families are all present with sane values.
    assert!(find(&samples, "ringrt_requests_total")[0].value >= 1.0);
    assert_eq!(find(&samples, "ringrt_workers")[0].value, 2.0);
    assert!(find(&samples, "ringrt_cache_misses_total")[0].value >= 1.0);
    assert!(!find(&samples, "ringrt_trace_enabled").is_empty());

    // Per-command histograms: for every labelled series the buckets are
    // cumulative, end at +Inf, and agree with the series' _count.
    let check_label = |s: &&Sample| s.label("command") == Some("check");
    let buckets: Vec<&Sample> = find(&samples, "ringrt_request_latency_seconds_bucket")
        .into_iter()
        .filter(check_label)
        .collect();
    assert!(!buckets.is_empty(), "no check buckets");
    let mut last = 0.0;
    for b in &buckets {
        assert!(
            b.value >= last,
            "bucket counts must be cumulative: {} < {last}",
            b.value
        );
        last = b.value;
    }
    let inf = buckets.last().unwrap();
    assert_eq!(inf.label("le"), Some("+Inf"));
    let count = find(&samples, "ringrt_request_latency_seconds_count")
        .into_iter()
        .find(check_label)
        .expect("check _count");
    assert_eq!(inf.value, count.value);
    assert!(count.value >= 1.0, "the CHECK must have been counted");

    // Every finite `le` edge is exactly a DurationHistogram bucket upper
    // bound expressed in seconds — the exposition reuses the simulator's
    // log2 edges rather than inventing its own.
    let mut finite_edges = 0;
    for b in &buckets {
        let le = b.label("le").expect("bucket has le");
        if le == "+Inf" {
            continue;
        }
        let le: f64 = le.parse().expect("finite le parses");
        let matches_edge =
            (0..64).any(|k| DurationHistogram::bucket_upper_bound_picos(k) as f64 * 1e-12 == le);
        assert!(matches_edge, "le={le} is not a DurationHistogram edge");
        finite_edges += 1;
    }
    assert!(finite_edges > 0, "expected at least one finite bucket edge");
    server.join();
}

#[test]
fn trace_captures_the_request_lifecycle_stages() {
    let server = test_server();
    let mut c = Client::connect(server.addr());
    // One uncached analysis: parse → cache miss → queue wait → execute.
    let check = c.roundtrip("CHECK mbps=16 set=20,20000");
    assert!(check.ends_with("cached=false"), "{check}");
    let (_header, json) = c.trace("TRACE 4096");
    let events = validate_chrome_trace(&json).expect("valid Chrome trace JSON");
    assert!(events > 0, "no events captured");
    for stage in ["parse", "cache", "queue_wait", "execute"] {
        assert!(
            json.contains(&format!("\"name\":\"{stage}\"")),
            "missing {stage} span in {json}"
        );
    }
    server.join();
}

#[test]
fn stats_reset_starts_a_fresh_window() {
    let server = test_server();
    let mut c = Client::connect(server.addr());
    c.roundtrip("CHECK mbps=16 set=20,20000");
    let before = c.roundtrip("STATS");
    assert!(before.contains(" check_count=1"), "{before}");
    assert!(before.contains(" cache_misses=1"), "{before}");
    assert!(before.contains(" queue_peak=1"), "{before}");
    assert_eq!(c.roundtrip("STATS RESET"), "OK cmd=stats_reset");
    let after = c.roundtrip("STATS");
    // Only the STATS request itself has been counted in the new window.
    assert!(after.contains(" requests=1 "), "{after}");
    assert!(after.contains(" check_count=0"), "{after}");
    assert!(after.contains(" cache_misses=0"), "{after}");
    assert!(after.contains(" queue_peak=0"), "{after}");
    // Gauges survive the reset: the cached entry is still warm…
    assert!(after.contains(" cache_entries=1"), "{after}");
    // …and the next identical CHECK proves it by hitting.
    let hit = c.roundtrip("CHECK mbps=16 set=20,20000");
    assert!(hit.ends_with("cached=true"), "{hit}");
    let resumed = c.roundtrip("STATS");
    assert!(resumed.contains(" cache_hits=1"), "{resumed}");
    server.join();
}

#[test]
fn trace_disabled_server_returns_empty_trace() {
    let server = spawn(ServiceConfig {
        addr: "127.0.0.1:0".to_owned(),
        workers: 1,
        queue_depth: 4,
        trace_enabled: false,
        ..ServiceConfig::default()
    })
    .expect("spawn server");
    let mut c = Client::connect(server.addr());
    c.roundtrip("CHECK mbps=16 set=20,20000");
    let (header, json) = c.trace("TRACE");
    assert_eq!(header, "OK cmd=trace events=0");
    // Still a valid, loadable trace document — just with no events.
    assert_eq!(validate_chrome_trace(&json), Ok(0), "{json}");
    server.join();
}
