//! TRACE-OVERHEAD — cost of the flight recorder on service throughput
//! (engineering benchmark).
//!
//! The `ringrt-obs` recorder sits on every request's hot path (parse,
//! cache, queue-wait, execute, respond spans), so its cost must be
//! demonstrably negligible. This harness spawns two otherwise identical
//! in-process servers — recorder on and recorder off — and drives both
//! with the same workloads, in two phases:
//!
//! * **analysis** — distinct `CHECK` requests, each a real schedulability
//!   analysis through the full queue/worker pipeline. This is the
//!   service's actual workload and the phase the **< 2 %** overhead
//!   target applies to.
//! * **cachehit** — one warm request list replayed, so every answer is a
//!   cache hit. These are the *cheapest* requests the server can answer,
//!   making any fixed per-request recorder cost maximally visible. Hits
//!   travel the zero-span fast path (pre-aggregated sharded counters +
//!   one sampled span per 64 hits — see `run_cached`), so this phase is
//!   held to its own **< 0.5 %** overhead target.
//!
//! Shared machines drift: CPU steal and frequency ramps swing wall-clock
//! throughput by tens of percent over hundreds of milliseconds, which
//! dwarfs a sub-microsecond per-request cost. The harness neutralises
//! that by **fine interleaving**: each measured round slices the request
//! list into small `BATCH` frames and alternates slice-by-slice between
//! the two servers (a few milliseconds apart), accumulating each
//! server's total busy time. Both servers therefore sample the same
//! noise spectrum and the ratio of totals isolates the recorder cost.
//! Rounds repeat and the median round overhead is reported.
//!
//! Besides the usual CSV on stdout, writes `BENCH_trace.json` to the
//! current directory for CI artifact upload.

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

use ringrt_bench::{banner, ExpOptions};
use ringrt_breakdown::table::{cell, Table};
use ringrt_service::{spawn, ServerHandle, ServiceConfig};

const OUT_PATH: &str = "BENCH_trace.json";

/// Requests per `BATCH` frame — one interleaving slice. Small enough
/// that machine-level drift is sampled equally by both servers (a slice
/// is a few milliseconds), large enough to amortise the socket round
/// trip out of the per-request cost.
const SLICE: usize = 200;

fn spawn_server(trace_enabled: bool, queue_depth: usize) -> ServerHandle {
    spawn(ServiceConfig {
        addr: "127.0.0.1:0".to_owned(),
        workers: ringrt_exec::configured_threads().max(2),
        queue_depth,
        default_deadline_ms: 60_000,
        trace_enabled,
        ..ServiceConfig::default()
    })
    .expect("spawn service")
}

/// A distinct (never cache-hitting across rounds) analysis request over
/// a paper-scale 12-stream set — the source experiments analyse sets of
/// tens of streams, not toy pairs, and the overhead target is judged
/// against that realistic per-request cost.
///
/// The payload perturbation must stay small: the closed-form tests cost
/// the same for any *schedulable* set, so as long as utilisation stays
/// well under 1 every request does identical work and rounds compare
/// apples to apples (`salt + i` stays below ~200 k for any sane round
/// count, and only the first stream carries the perturbation).
fn analysis_line(i: usize, salt: usize) -> String {
    let mut set = format!("set=20,{}", 20_000 + (salt + i));
    for j in 1..12usize {
        // Periods 25..80 ms, payloads 4..15 kbit: per-stream utilisation
        // stays near 1 %, the whole set near 15 % — comfortably feasible.
        let period_ms = 20 + 5 * j;
        let bits = 4_000 + 1_000 * j;
        set.push_str(&format!(";{period_ms},{bits}"));
    }
    format!("CHECK mbps=16 {set}")
}

/// One persistent connection to one server.
struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    fn connect(addr: SocketAddr) -> Client {
        let stream = TcpStream::connect(addr).expect("connect");
        stream.set_nodelay(true).ok();
        let writer = stream.try_clone().expect("clone");
        Client {
            reader: BufReader::new(stream),
            writer,
        }
    }

    /// Sends one slice as a `BATCH` frame, reads every response, and
    /// returns the wall time the exchange took.
    fn drive_slice(&mut self, lines: &[String]) -> Duration {
        let mut frame = format!("BATCH {}\n", lines.len());
        for line in lines {
            frame.push_str(line);
            frame.push('\n');
        }
        let started = Instant::now();
        self.writer.write_all(frame.as_bytes()).expect("send");
        let mut resp = String::new();
        for _ in lines {
            resp.clear();
            self.reader.read_line(&mut resp).expect("recv");
            assert!(resp.starts_with("OK"), "unexpected response: {resp}");
        }
        started.elapsed()
    }
}

struct RoundOutcome {
    rps_on: f64,
    rps_off: f64,
    overhead_pct: f64,
}

/// One measured round: alternates `SLICE`-sized frames between the two
/// servers (order flipping every slice), driving both through the
/// **same** request list, and compares accumulated busy time.
///
/// Each slice yields a *paired* `(t_on, t_off)` sample taken a few
/// milliseconds apart. Before summing, the pairs with the most extreme
/// on-minus-off differences (10 % at each end) are discarded: a
/// scheduler stall or steal burst that lands inside exactly one
/// server's slice produces an outlier difference, and trimming removes
/// it symmetrically without biasing the estimate.
fn run_round(on: &mut Client, off: &mut Client, lines: &[String]) -> RoundOutcome {
    let mut pairs: Vec<(f64, f64)> = Vec::new();
    for (k, slice) in lines.chunks(SLICE).enumerate() {
        let (t_on, t_off) = if k % 2 == 0 {
            let a = on.drive_slice(slice);
            let b = off.drive_slice(slice);
            (a, b)
        } else {
            let b = off.drive_slice(slice);
            let a = on.drive_slice(slice);
            (a, b)
        };
        pairs.push((t_on.as_secs_f64(), t_off.as_secs_f64()));
    }
    pairs.sort_by(|x, y| {
        let dx = x.0 - x.1;
        let dy = y.0 - y.1;
        dx.partial_cmp(&dy).expect("finite slice times")
    });
    let cut = pairs.len() / 5;
    let kept = &pairs[cut..pairs.len() - cut];
    let busy_on: f64 = kept.iter().map(|p| p.0).sum();
    let busy_off: f64 = kept.iter().map(|p| p.1).sum();
    let n = (kept.len() * SLICE) as f64;
    let rps_on = n / busy_on.max(1e-9);
    let rps_off = n / busy_off.max(1e-9);
    RoundOutcome {
        rps_on,
        rps_off,
        overhead_pct: 100.0 * (1.0 - rps_on / rps_off.max(1e-9)),
    }
}

struct PhaseOutcome {
    median_on: f64,
    median_off: f64,
    overhead_pct: f64,
}

fn median(xs: &mut [f64]) -> f64 {
    xs.sort_by(|a, b| a.partial_cmp(b).expect("finite rates"));
    let mid = xs.len() / 2;
    if xs.len() % 2 == 1 {
        xs[mid]
    } else {
        (xs[mid - 1] + xs[mid]) / 2.0
    }
}

/// Runs `rounds` interleaved rounds and reports the median round; the
/// median discards the minority of rounds a noise burst lands in.
fn run_phase(
    on: &mut Client,
    off: &mut Client,
    rounds: usize,
    mut make_lines: impl FnMut(usize) -> Vec<String>,
) -> PhaseOutcome {
    let mut rates_on = Vec::with_capacity(rounds);
    let mut rates_off = Vec::with_capacity(rounds);
    let mut overheads = Vec::with_capacity(rounds);
    for round in 0..rounds {
        let lines = make_lines(round);
        let r = run_round(on, off, &lines);
        println!(
            "#   round {round}: rps_on={:.0} rps_off={:.0} overhead={:.2}%",
            r.rps_on, r.rps_off, r.overhead_pct
        );
        rates_on.push(r.rps_on);
        rates_off.push(r.rps_off);
        overheads.push(r.overhead_pct);
    }
    PhaseOutcome {
        median_on: median(&mut rates_on),
        median_off: median(&mut rates_off),
        overhead_pct: median(&mut overheads),
    }
}

fn main() {
    let opts = ExpOptions::from_env();
    banner(
        "TRACE-OVERHEAD",
        "service throughput with the flight recorder on vs off",
        &opts,
    );

    // Rounds must be long (tens of thousands of requests) for the
    // ~100 ns/span recorder cost to rise above residual timing jitter;
    // rounded to whole slices so every paired sample covers exactly
    // `SLICE` requests.
    let total = (opts.samples * 240).max(4_000).div_ceil(SLICE) * SLICE;
    // Odd round counts so the median is an actual observed round.
    // Quick mode keeps the shorter request list but not fewer rounds:
    // the cache-hit phase is gated at 0.5 %, which sits near the noise
    // floor of a 5-round median on a busy host — 9 rounds tighten it.
    let rounds = 9;

    let on_server = spawn_server(true, 4 * SLICE);
    let off_server = spawn_server(false, 4 * SLICE);
    println!(
        "# recorder-on server {} / recorder-off server {}, {total} requests × {rounds} rounds \
         per phase, interleaved {SLICE}-request slices",
        on_server.addr(),
        off_server.addr()
    );
    let mut on = Client::connect(on_server.addr());
    let mut off = Client::connect(off_server.addr());

    // Phase 1 — analysis: every request distinct per server lifetime, so
    // each one runs the real admission analysis through the pipeline.
    // Both servers get the *same* list (each for the first time), making
    // the comparison exact. One unmeasured warm-up round lets allocators,
    // branch predictors, and the frequency governor settle first.
    let mut salt = 0;
    let mut fresh_lines = |_| {
        salt += total;
        (0..total)
            .map(|i| analysis_line(i, salt))
            .collect::<Vec<_>>()
    };
    let _ = run_round(&mut on, &mut off, &fresh_lines(0));
    let analysis = run_phase(&mut on, &mut off, rounds, &mut fresh_lines);

    // Phase 2 — cachehit: one fixed list, primed once per server, then
    // replayed so every answer is served from the result cache.
    let warm: Vec<String> = (0..total).map(|i| analysis_line(i % 16, 0)).collect();
    let _ = run_round(&mut on, &mut off, &warm);
    let cachehit = run_phase(&mut on, &mut off, rounds, |_| warm.clone());

    let mut table = Table::new(&[
        "phase",
        "requests",
        "rounds",
        "rps_recorder_off",
        "rps_recorder_on",
        "overhead_pct",
    ]);
    for (phase, r) in [("analysis", &analysis), ("cachehit", &cachehit)] {
        table.push_row(&[
            phase.into(),
            total.to_string(),
            rounds.to_string(),
            cell(r.median_off, 1),
            cell(r.median_on, 1),
            cell(r.overhead_pct, 2),
        ]);
    }
    print!("{}", table.to_csv());

    // `rps_delta_pct` is the signed throughput delta of recorder-on vs
    // recorder-off (positive = faster with the recorder, i.e. overhead
    // below jitter); `overhead_pct` is its negation, kept for the CI gate.
    let json = format!(
        "{{\n  \"bench\": \"trace_overhead\",\n  \"requests_per_round\": {total},\n  \
         \"rounds\": {rounds},\n  \"slice\": {SLICE},\n  \"phases\": [\n    \
         {{\"phase\": \"analysis\", \"rps_recorder_on\": {:.3}, \"rps_recorder_off\": {:.3}, \
         \"overhead_pct\": {:.3}, \"rps_delta_pct\": {:.3}, \
         \"target_overhead_pct\": 2.0, \"target_applies\": true}},\n    \
         {{\"phase\": \"cachehit\", \"rps_recorder_on\": {:.3}, \"rps_recorder_off\": {:.3}, \
         \"overhead_pct\": {:.3}, \"rps_delta_pct\": {:.3}, \
         \"target_overhead_pct\": 0.5, \"target_applies\": true}}\n  ]\n}}\n",
        analysis.median_on,
        analysis.median_off,
        analysis.overhead_pct,
        -analysis.overhead_pct,
        cachehit.median_on,
        cachehit.median_off,
        cachehit.overhead_pct,
        -cachehit.overhead_pct,
    );
    if let Err(e) = std::fs::write(OUT_PATH, &json) {
        eprintln!("warning: could not write {OUT_PATH}: {e}");
    } else {
        println!();
        println!(
            "# wrote {OUT_PATH} (analysis overhead {:.2}% vs 2% target; cache-hit \
             {:.2}% vs 0.5% target)",
            analysis.overhead_pct, cachehit.overhead_pct
        );
    }
    println!("# overheads are medians over slice-interleaved same-workload rounds; a small");
    println!("# negative value means the recorder cost sits below residual timing jitter.");
    println!("# cache-hit requests are the cheapest the server answers; their zero-span");
    println!("# fast path (sharded counters + 1-in-64 sampled spans) is held to <0.5%.");

    drop(on);
    drop(off);
    on_server.join();
    off_server.join();
}
