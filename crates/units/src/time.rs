//! Analysis-domain continuous time.

use core::cmp::Ordering;
use core::fmt;
use core::iter::Sum;
use core::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

/// A duration (or instant offset) in seconds, stored as an `f64`.
///
/// `Seconds` is the time type of the *analytical* side of the suite: message
/// periods, transmission times, token walk times, TTRT values. The
/// simulator uses the exact integer [`crate::SimTime`] instead; convert with
/// [`Seconds::to_sim_duration`].
///
/// All ordinary arithmetic between durations is defined, as well as scaling
/// by dimensionless `f64` factors and the dimensionless ratio
/// `Seconds / Seconds`.
///
/// # Examples
///
/// ```
/// use ringrt_units::Seconds;
///
/// let period = Seconds::from_millis(100.0);
/// let cost = Seconds::from_micros(250.0);
/// let utilization = cost / period;
/// assert!((utilization - 0.0025).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct Seconds(f64);

impl Seconds {
    /// The zero duration.
    pub const ZERO: Seconds = Seconds(0.0);

    /// Creates a duration from a raw number of seconds.
    ///
    /// # Panics
    ///
    /// Panics if `secs` is NaN. Infinite and negative values are allowed
    /// (negative durations arise transiently in slack computations).
    #[must_use]
    pub fn new(secs: f64) -> Self {
        assert!(!secs.is_nan(), "Seconds cannot be NaN");
        Seconds(secs)
    }

    /// Creates a duration from milliseconds.
    #[must_use]
    pub fn from_millis(ms: f64) -> Self {
        Self::new(ms * 1e-3)
    }

    /// Creates a duration from microseconds.
    #[must_use]
    pub fn from_micros(us: f64) -> Self {
        Self::new(us * 1e-6)
    }

    /// Creates a duration from nanoseconds.
    #[must_use]
    pub fn from_nanos(ns: f64) -> Self {
        Self::new(ns * 1e-9)
    }

    /// Returns the raw value in seconds.
    #[must_use]
    pub fn as_secs_f64(self) -> f64 {
        self.0
    }

    /// Returns the value in milliseconds.
    #[must_use]
    pub fn as_millis(self) -> f64 {
        self.0 * 1e3
    }

    /// Returns the value in microseconds.
    #[must_use]
    pub fn as_micros(self) -> f64 {
        self.0 * 1e6
    }

    /// Returns the value in nanoseconds.
    #[must_use]
    pub fn as_nanos(self) -> f64 {
        self.0 * 1e9
    }

    /// Returns `true` if the duration is exactly zero.
    #[must_use]
    pub fn is_zero(self) -> bool {
        self.0 == 0.0
    }

    /// Returns `true` if the duration is finite (not ±∞).
    #[must_use]
    pub fn is_finite(self) -> bool {
        self.0.is_finite()
    }

    /// Returns the smaller of two durations.
    #[must_use]
    pub fn min(self, other: Seconds) -> Seconds {
        Seconds(self.0.min(other.0))
    }

    /// Returns the larger of two durations.
    #[must_use]
    pub fn max(self, other: Seconds) -> Seconds {
        Seconds(self.0.max(other.0))
    }

    /// Returns the absolute value of the duration.
    #[must_use]
    pub fn abs(self) -> Seconds {
        Seconds(self.0.abs())
    }

    /// Returns the square root of the duration's numeric value, as a
    /// duration.
    ///
    /// Dimensionally this is `sqrt(T² )` only when the argument is itself a
    /// product of durations; it exists for the paper's TTRT heuristic
    /// `TTRT = √(Θ'·P_min)`, computed as
    /// `(theta * p_min.as_secs_f64()).sqrt_value()`.
    #[must_use]
    pub fn sqrt_value(self) -> Seconds {
        Seconds(self.0.sqrt())
    }

    /// Total ordering that treats `Seconds` as plain finite numbers.
    ///
    /// # Panics
    ///
    /// Never panics: construction forbids NaN.
    #[must_use]
    pub fn total_cmp(&self, other: &Seconds) -> Ordering {
        self.0.total_cmp(&other.0)
    }

    /// Converts into an exact simulator duration, rounding to the nearest
    /// picosecond.
    ///
    /// # Panics
    ///
    /// Panics if the value is negative, non-finite, or overflows the
    /// picosecond range (~5.3e6 seconds).
    #[must_use]
    pub fn to_sim_duration(self) -> crate::SimDuration {
        crate::SimDuration::from_seconds(self)
    }
}

impl fmt::Display for Seconds {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let v = self.0;
        let a = v.abs();
        if a == 0.0 {
            write!(f, "0 s")
        } else if a >= 1.0 {
            write!(f, "{v:.6} s")
        } else if a >= 1e-3 {
            write!(f, "{:.6} ms", v * 1e3)
        } else if a >= 1e-6 {
            write!(f, "{:.6} µs", v * 1e6)
        } else {
            write!(f, "{:.3} ns", v * 1e9)
        }
    }
}

impl Add for Seconds {
    type Output = Seconds;
    fn add(self, rhs: Seconds) -> Seconds {
        Seconds::new(self.0 + rhs.0)
    }
}

impl AddAssign for Seconds {
    fn add_assign(&mut self, rhs: Seconds) {
        *self = *self + rhs;
    }
}

impl Sub for Seconds {
    type Output = Seconds;
    fn sub(self, rhs: Seconds) -> Seconds {
        Seconds::new(self.0 - rhs.0)
    }
}

impl SubAssign for Seconds {
    fn sub_assign(&mut self, rhs: Seconds) {
        *self = *self - rhs;
    }
}

impl Neg for Seconds {
    type Output = Seconds;
    fn neg(self) -> Seconds {
        Seconds::new(-self.0)
    }
}

impl Mul<f64> for Seconds {
    type Output = Seconds;
    fn mul(self, rhs: f64) -> Seconds {
        Seconds::new(self.0 * rhs)
    }
}

impl Mul<Seconds> for f64 {
    type Output = Seconds;
    fn mul(self, rhs: Seconds) -> Seconds {
        Seconds::new(self * rhs.0)
    }
}

impl Div<f64> for Seconds {
    type Output = Seconds;
    fn div(self, rhs: f64) -> Seconds {
        Seconds::new(self.0 / rhs)
    }
}

/// The dimensionless ratio of two durations.
impl Div<Seconds> for Seconds {
    type Output = f64;
    fn div(self, rhs: Seconds) -> f64 {
        self.0 / rhs.0
    }
}

impl Sum for Seconds {
    fn sum<I: Iterator<Item = Seconds>>(iter: I) -> Seconds {
        iter.fold(Seconds::ZERO, Add::add)
    }
}

impl<'a> Sum<&'a Seconds> for Seconds {
    fn sum<I: Iterator<Item = &'a Seconds>>(iter: I) -> Seconds {
        iter.copied().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_agree() {
        assert_eq!(Seconds::from_millis(1.0), Seconds::new(1e-3));
        assert_eq!(Seconds::from_micros(1.0), Seconds::new(1e-6));
        assert_eq!(Seconds::from_nanos(1.0), Seconds::new(1e-9));
    }

    #[test]
    fn accessors_roundtrip() {
        let t = Seconds::new(0.125);
        assert_eq!(t.as_millis(), 125.0);
        assert_eq!(t.as_micros(), 125_000.0);
        assert_eq!(t.as_nanos(), 125_000_000.0);
    }

    #[test]
    fn arithmetic() {
        let a = Seconds::new(1.5);
        let b = Seconds::new(0.5);
        assert_eq!(a + b, Seconds::new(2.0));
        assert_eq!(a - b, Seconds::new(1.0));
        assert_eq!(a * 2.0, Seconds::new(3.0));
        assert_eq!(2.0 * a, Seconds::new(3.0));
        assert_eq!(a / 3.0, Seconds::new(0.5));
        assert_eq!(a / b, 3.0);
        assert_eq!(-b, Seconds::new(-0.5));
    }

    #[test]
    fn assign_ops() {
        let mut t = Seconds::new(1.0);
        t += Seconds::new(0.5);
        assert_eq!(t, Seconds::new(1.5));
        t -= Seconds::new(1.0);
        assert_eq!(t, Seconds::new(0.5));
    }

    #[test]
    fn min_max_abs() {
        let a = Seconds::new(-2.0);
        let b = Seconds::new(1.0);
        assert_eq!(a.min(b), a);
        assert_eq!(a.max(b), b);
        assert_eq!(a.abs(), Seconds::new(2.0));
    }

    #[test]
    fn sum_iterator() {
        let parts = [Seconds::new(0.25); 4];
        let total: Seconds = parts.iter().sum();
        assert_eq!(total, Seconds::new(1.0));
        let total2: Seconds = parts.into_iter().sum();
        assert_eq!(total2, Seconds::new(1.0));
    }

    #[test]
    fn display_scales() {
        assert_eq!(format!("{}", Seconds::ZERO), "0 s");
        assert!(format!("{}", Seconds::new(2.5)).ends_with(" s"));
        assert!(format!("{}", Seconds::from_millis(2.5)).ends_with(" ms"));
        assert!(format!("{}", Seconds::from_micros(2.5)).ends_with(" µs"));
        assert!(format!("{}", Seconds::from_nanos(2.5)).ends_with(" ns"));
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn nan_rejected() {
        let _ = Seconds::new(f64::NAN);
    }

    #[test]
    fn sqrt_value_for_ttrt_heuristic() {
        // √(Θ'·P) with Θ' = 100 µs and P = 100 ms is √(1e-5) s ≈ 3.162 ms.
        let theta = Seconds::from_micros(100.0);
        let p = Seconds::from_millis(100.0);
        let ttrt = Seconds::new(theta.as_secs_f64() * p.as_secs_f64()).sqrt_value();
        assert!((ttrt.as_millis() - 3.1623).abs() < 1e-3);
    }

    #[test]
    fn total_cmp_is_total_on_finite() {
        let xs = [
            Seconds::new(-1.0),
            Seconds::ZERO,
            Seconds::new(1.0),
            Seconds::new(f64::INFINITY),
        ];
        for w in xs.windows(2) {
            assert_eq!(w[0].total_cmp(&w[1]), Ordering::Less);
        }
    }
}
