//! Strongly-typed physical units for the `ringrt` suite.
//!
//! The schedulability analyses of Kamat & Zhao (ICDCS 1993) juggle three
//! kinds of quantities that are all too easy to confuse when expressed as
//! bare `f64`s:
//!
//! * **durations** — message transmission times, periods, deadlines, the
//!   token walk time `WT`, the token circulation time `Θ`;
//! * **data sizes** — payload and overhead lengths in bits or bytes;
//! * **rates** — the ring bandwidth `BW` in bits per second.
//!
//! This crate provides zero-cost newtypes ([`Seconds`], [`Bits`], [`Bytes`],
//! [`Bandwidth`]) with only the physically meaningful arithmetic defined, so
//! `Bits / Bandwidth = Seconds` type-checks while `Seconds + Bits` does not.
//!
//! The discrete-event simulator needs an exact, totally ordered clock; IEEE
//! 754 doubles are unsuitable because event ordering must be reproducible.
//! [`SimTime`] and [`SimDuration`] provide an integer picosecond timeline
//! (u64 picoseconds span ~5.3 years of simulated time, ample for any run
//! here) with explicit, lossless arithmetic and checked conversions from the
//! analysis-domain [`Seconds`].
//!
//! # Examples
//!
//! ```
//! use ringrt_units::{Bandwidth, Bits, Seconds};
//!
//! let bw = Bandwidth::from_mbps(4.0);
//! let frame = Bits::new(512 + 112);
//! let t: Seconds = bw.transmission_time(frame);
//! assert!((t.as_secs_f64() - 156e-6).abs() < 1e-9);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bandwidth;
mod data;
mod sim_time;
mod time;

pub use bandwidth::Bandwidth;
pub use data::{Bits, Bytes};
pub use sim_time::{SimDuration, SimTime, PICOS_PER_SEC};
pub use time::Seconds;
