//! Simulation run configuration.

use ringrt_model::RingConfig;
use ringrt_units::{Seconds, SimDuration};

/// How synchronous message arrivals are phased across stations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phasing {
    /// Every stream releases its first message at `t = 0` — the critical
    /// instant the schedulability analyses assume worst-case.
    Synchronized,
    /// Stream `i` starts at `i · P_i / n`, spreading load smoothly (a
    /// friendly phasing the analyses do not rely on).
    Staggered,
}

/// Configuration shared by both protocol simulators.
///
/// # Examples
///
/// ```
/// use ringrt_model::RingConfig;
/// use ringrt_sim::{Phasing, SimConfig};
/// use ringrt_units::{Bandwidth, Seconds};
///
/// let ring = RingConfig::fddi(10, Bandwidth::from_mbps(100.0));
/// let cfg = SimConfig::new(ring, Seconds::new(1.0))
///     .with_phasing(Phasing::Staggered)
///     .with_async_load(0.3)
///     .with_seed(7);
/// assert_eq!(cfg.seed(), 7);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimConfig {
    ring: RingConfig,
    duration: SimDuration,
    phasing: Phasing,
    /// Offered asynchronous load as a fraction of the ring bandwidth.
    async_load: f64,
    /// Payload bits per asynchronous frame (overhead added on top).
    async_payload_bits: u64,
    seed: u64,
    /// Mean rate of free-token losses, per simulated second (0 = never).
    token_loss_rate: f64,
    /// Ring-recovery (claim/monitor) time after a token loss.
    token_recovery: Seconds,
    /// Maximum trace events captured (0 = tracing off).
    trace_capacity: usize,
}

impl SimConfig {
    /// Creates a configuration simulating `duration` of ring time with no
    /// asynchronous background load and synchronized phasing.
    ///
    /// # Panics
    ///
    /// Panics if `duration` is not strictly positive and finite.
    #[must_use]
    pub fn new(ring: RingConfig, duration: Seconds) -> Self {
        assert!(
            duration.is_finite() && duration > Seconds::ZERO,
            "simulation duration must be positive"
        );
        SimConfig {
            ring,
            duration: duration.to_sim_duration(),
            phasing: Phasing::Synchronized,
            async_load: 0.0,
            async_payload_bits: 512,
            seed: 0xD15C_0001,
            token_loss_rate: 0.0,
            token_recovery: Seconds::from_millis(10.0),
            trace_capacity: 0,
        }
    }

    /// Sets the arrival phasing.
    #[must_use]
    pub fn with_phasing(mut self, phasing: Phasing) -> Self {
        self.phasing = phasing;
        self
    }

    /// Sets the offered asynchronous load (fraction of bandwidth in
    /// `[0, 1)`), generated as Poisson arrivals of fixed-size frames spread
    /// uniformly over the stations.
    ///
    /// # Panics
    ///
    /// Panics unless `0 ≤ load < 1`.
    #[must_use]
    pub fn with_async_load(mut self, load: f64) -> Self {
        assert!((0.0..1.0).contains(&load), "async load must be in [0, 1)");
        self.async_load = load;
        self
    }

    /// Sets the asynchronous frame payload size in bits (default 512: the
    /// paper's 64-byte asynchronous packets).
    ///
    /// # Panics
    ///
    /// Panics if zero.
    #[must_use]
    pub fn with_async_payload_bits(mut self, bits: u64) -> Self {
        assert!(bits > 0, "async payload must be non-empty");
        self.async_payload_bits = bits;
        self
    }

    /// Sets the RNG seed for asynchronous arrivals.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// The ring under simulation.
    #[must_use]
    pub fn ring(&self) -> &RingConfig {
        &self.ring
    }

    /// Simulated time span.
    #[must_use]
    pub fn duration(&self) -> SimDuration {
        self.duration
    }

    /// Arrival phasing.
    #[must_use]
    pub fn phasing(&self) -> Phasing {
        self.phasing
    }

    /// Offered asynchronous load fraction.
    #[must_use]
    pub fn async_load(&self) -> f64 {
        self.async_load
    }

    /// Asynchronous frame payload bits.
    #[must_use]
    pub fn async_payload_bits(&self) -> u64 {
        self.async_payload_bits
    }

    /// RNG seed.
    #[must_use]
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Enables token-loss fault injection: free tokens are lost as a
    /// Poisson process at `rate_per_sec`, and each loss stalls the ring for
    /// `recovery` (the claim/active-monitor reinitialization) before a
    /// fresh token appears.
    ///
    /// # Panics
    ///
    /// Panics if `rate_per_sec` is negative/non-finite or `recovery` is not
    /// strictly positive.
    #[must_use]
    pub fn with_token_loss(mut self, rate_per_sec: f64, recovery: Seconds) -> Self {
        assert!(
            rate_per_sec.is_finite() && rate_per_sec >= 0.0,
            "token loss rate must be finite and non-negative"
        );
        assert!(
            recovery.is_finite() && recovery > Seconds::ZERO,
            "token recovery time must be positive"
        );
        self.token_loss_rate = rate_per_sec;
        self.token_recovery = recovery;
        self
    }

    /// Mean token losses per simulated second (0 disables injection).
    #[must_use]
    pub fn token_loss_rate(&self) -> f64 {
        self.token_loss_rate
    }

    /// Ring recovery time after a token loss.
    #[must_use]
    pub fn token_recovery(&self) -> Seconds {
        self.token_recovery
    }

    /// Enables protocol-event tracing, keeping at most `capacity` events
    /// (see [`crate::TraceEvent`]); events past the cap are counted, not
    /// stored.
    #[must_use]
    pub fn with_trace(mut self, capacity: usize) -> Self {
        self.trace_capacity = capacity;
        self
    }

    /// Trace capacity (0 = tracing disabled).
    #[must_use]
    pub fn trace_capacity(&self) -> usize {
        self.trace_capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ringrt_units::Bandwidth;

    fn ring() -> RingConfig {
        RingConfig::fddi(4, Bandwidth::from_mbps(100.0))
    }

    #[test]
    fn builder_round_trip() {
        let cfg = SimConfig::new(ring(), Seconds::new(0.5))
            .with_phasing(Phasing::Staggered)
            .with_async_load(0.25)
            .with_async_payload_bits(1024)
            .with_seed(99);
        assert_eq!(cfg.phasing(), Phasing::Staggered);
        assert_eq!(cfg.async_load(), 0.25);
        assert_eq!(cfg.async_payload_bits(), 1024);
        assert_eq!(cfg.seed(), 99);
        assert_eq!(cfg.ring().stations(), 4);
        assert_eq!(cfg.duration().as_seconds().as_secs_f64(), 0.5);
    }

    #[test]
    fn token_loss_builder() {
        let cfg = SimConfig::new(ring(), Seconds::new(1.0))
            .with_token_loss(2.0, Seconds::from_millis(5.0));
        assert_eq!(cfg.token_loss_rate(), 2.0);
        assert_eq!(cfg.token_recovery(), Seconds::from_millis(5.0));
        // Default: no injection.
        let cfg = SimConfig::new(ring(), Seconds::new(1.0));
        assert_eq!(cfg.token_loss_rate(), 0.0);
    }

    #[test]
    fn trace_builder() {
        let cfg = SimConfig::new(ring(), Seconds::new(1.0)).with_trace(500);
        assert_eq!(cfg.trace_capacity(), 500);
        assert_eq!(
            SimConfig::new(ring(), Seconds::new(1.0)).trace_capacity(),
            0
        );
    }

    #[test]
    #[should_panic(expected = "recovery time must be positive")]
    fn zero_recovery_rejected() {
        let _ = SimConfig::new(ring(), Seconds::new(1.0)).with_token_loss(1.0, Seconds::ZERO);
    }

    #[test]
    #[should_panic(expected = "loss rate")]
    fn negative_loss_rate_rejected() {
        let _ = SimConfig::new(ring(), Seconds::new(1.0))
            .with_token_loss(-1.0, Seconds::from_millis(1.0));
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn zero_duration_rejected() {
        let _ = SimConfig::new(ring(), Seconds::ZERO);
    }

    #[test]
    #[should_panic(expected = "async load")]
    fn full_async_load_rejected() {
        let _ = SimConfig::new(ring(), Seconds::new(1.0)).with_async_load(1.0);
    }
}
