//! FAILOVER — warm-standby catch-up and promotion latency of the
//! replicated admission-control service (engineering benchmark).
//!
//! An admission controller guarding a production ring must not become
//! the availability bottleneck of the network it protects. This harness
//! measures the two delays that matter for the replicated deployment
//! (`ringrt serve --follow`):
//!
//! * **catch-up** — a cold standby attaches to a primary already holding
//!   `--samples` journaled admissions and replays the shipped backlog
//!   until its applied sequence reaches the primary's head (reported as
//!   wall time and records/s);
//! * **failover** — the primary is shut down, `PROMOTE` is sent to the
//!   standby, and the clock runs until (a) the promotion — fenced epoch
//!   durably published — is acknowledged and (b) the first *write*
//!   (an `ADMIT`) commits on the new primary.
//!
//! Each trial uses fresh state directories; medians over all trials are
//! reported. Besides the usual CSV on stdout, writes
//! `BENCH_failover.json` to the current directory for CI artifact
//! upload.

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

use ringrt_bench::{banner, ExpOptions};
use ringrt_breakdown::table::{cell, Table};
use ringrt_service::{spawn, ServerHandle, ServiceConfig};

const OUT_PATH: &str = "BENCH_failover.json";

/// Streams per ring; 50 streams on a 60-station, 100 Mbps ring admit
/// comfortably under the modified PDP criterion.
const RING_SIZE: usize = 50;

struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    fn connect(addr: SocketAddr) -> Client {
        let stream = TcpStream::connect(addr).expect("connect");
        stream.set_nodelay(true).ok();
        let writer = stream.try_clone().expect("clone");
        Client {
            reader: BufReader::new(stream),
            writer,
        }
    }

    fn roundtrip(&mut self, line: &str) -> String {
        self.writer
            .write_all(format!("{line}\n").as_bytes())
            .expect("send");
        let mut resp = String::new();
        self.reader.read_line(&mut resp).expect("recv");
        resp.trim_end().to_owned()
    }
}

fn field(resp: &str, key: &str) -> u64 {
    resp.split_whitespace()
        .find_map(|w| w.strip_prefix(&format!("{key}=")[..]))
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| panic!("no numeric field `{key}` in `{resp}`"))
}

fn server(dir: &Path, follow: Option<String>) -> ServerHandle {
    spawn(ServiceConfig {
        addr: "127.0.0.1:0".to_owned(),
        workers: 2,
        queue_depth: 256,
        state_dir: Some(dir.to_path_buf()),
        follow,
        ..ServiceConfig::default()
    })
    .expect("spawn server")
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("ringrt-exp-failover-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Registers rings and admits `streams` synchronous streams through
/// `BATCH` frames on the primary.
fn load_primary(c: &mut Client, streams: usize) {
    let rings = streams.div_ceil(RING_SIZE);
    for r in 0..rings {
        let resp = c.roundtrip(&format!(
            "REGISTER ring=load{r:03} protocol=modified mbps=100 stations={}",
            RING_SIZE + 10
        ));
        assert!(resp.starts_with("OK"), "{resp}");
    }
    let mut frame = format!("BATCH {streams}\n");
    for i in 0..streams {
        frame.push_str(&format!(
            "ADMIT ring=load{:03} stream=s{:03} period_ms={} bits={}\n",
            i / RING_SIZE,
            i % RING_SIZE,
            20 + (i % 40),
            1_000 + 16 * (i as u64 % 50),
        ));
    }
    c.writer.write_all(frame.as_bytes()).expect("send batch");
    for i in 0..streams {
        let mut resp = String::new();
        c.reader.read_line(&mut resp).expect("batch recv");
        assert!(resp.contains("admitted=true"), "admit {i}: {resp}");
    }
}

struct Trial {
    records: u64,
    catch_up_ms: f64,
    promote_ms: f64,
    first_write_ms: f64,
}

fn run_trial(trial: usize, streams: usize) -> Trial {
    let pdir = temp_dir(&format!("p{trial}"));
    let fdir = temp_dir(&format!("f{trial}"));
    let primary = server(&pdir, None);
    let mut p = Client::connect(primary.addr());
    load_primary(&mut p, streams);
    // One journal record per REGISTER and per applied ADMIT.
    let head = (streams.div_ceil(RING_SIZE) + streams) as u64;

    // Catch-up: attach a cold standby and poll its applied sequence.
    let attach = Instant::now();
    let standby = server(&fdir, Some(primary.addr().to_string()));
    let mut f = Client::connect(standby.addr());
    loop {
        let repl = f.roundtrip("REPLICATION");
        if field(&repl, "applied_seq") >= head {
            break;
        }
        assert!(
            attach.elapsed() < Duration::from_secs(60),
            "standby never caught up: {repl}"
        );
        std::thread::sleep(Duration::from_millis(2));
    }
    let catch_up = attach.elapsed();

    // Failover: kill the primary, promote, then commit the first write.
    assert_eq!(p.roundtrip("SHUTDOWN"), "OK cmd=shutdown");
    primary.join();
    let started = Instant::now();
    let resp = f.roundtrip("PROMOTE");
    assert!(resp.starts_with("OK cmd=promote"), "{resp}");
    let promote = started.elapsed();
    let resp = f.roundtrip("ADMIT ring=load000 stream=post period_ms=90 bits=1000");
    assert!(resp.contains("admitted=true"), "{resp}");
    let first_write = started.elapsed();

    assert_eq!(f.roundtrip("SHUTDOWN"), "OK cmd=shutdown");
    standby.join();
    for d in [pdir, fdir] {
        let _ = std::fs::remove_dir_all(&d);
    }
    Trial {
        records: head,
        catch_up_ms: catch_up.as_secs_f64() * 1e3,
        promote_ms: promote.as_secs_f64() * 1e3,
        first_write_ms: first_write.as_secs_f64() * 1e3,
    }
}

fn median(xs: &mut [f64]) -> f64 {
    xs.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    let mid = xs.len() / 2;
    if xs.len() % 2 == 1 {
        xs[mid]
    } else {
        (xs[mid - 1] + xs[mid]) / 2.0
    }
}

fn main() {
    let opts = ExpOptions::from_env();
    banner(
        "FAILOVER",
        "warm-standby catch-up and promotion latency of the replicated service",
        &opts,
    );

    let streams = opts.samples.clamp(50, 2_000);
    let trials = if opts.quick { 3 } else { 5 };
    println!("# {trials} trials, {streams} journaled admissions per primary");

    let mut catch_up = Vec::new();
    let mut promote = Vec::new();
    let mut first_write = Vec::new();
    let mut records = 0;
    let mut table = Table::new(&[
        "trial",
        "records",
        "catch_up_ms",
        "ship_records_per_sec",
        "promote_ms",
        "first_write_ms",
    ]);
    for t in 0..trials {
        let r = run_trial(t, streams);
        table.push_row(&[
            t.to_string(),
            r.records.to_string(),
            cell(r.catch_up_ms, 2),
            cell(r.records as f64 / (r.catch_up_ms / 1e3).max(1e-9), 0),
            cell(r.promote_ms, 2),
            cell(r.first_write_ms, 2),
        ]);
        records = r.records;
        catch_up.push(r.catch_up_ms);
        promote.push(r.promote_ms);
        first_write.push(r.first_write_ms);
    }
    print!("{}", table.to_csv());

    let catch_up_ms = median(&mut catch_up);
    let promote_ms = median(&mut promote);
    let first_write_ms = median(&mut first_write);
    println!();
    println!(
        "# medians: catch-up {catch_up_ms:.2} ms for {records} records \
         ({:.0} records/s), promote {promote_ms:.2} ms, first write {first_write_ms:.2} ms",
        records as f64 / (catch_up_ms / 1e3).max(1e-9)
    );

    let json = format!(
        "{{\n  \"bench\": \"failover\",\n  \"trials\": {trials},\n  \
         \"streams\": {streams},\n  \"records\": {records},\n  \
         \"catch_up_ms\": {catch_up_ms:.3},\n  \
         \"ship_records_per_sec\": {:.1},\n  \
         \"promote_ms\": {promote_ms:.3},\n  \
         \"first_write_ms\": {first_write_ms:.3}\n}}\n",
        records as f64 / (catch_up_ms / 1e3).max(1e-9),
    );
    if let Err(e) = std::fs::write(OUT_PATH, &json) {
        eprintln!("warning: could not write {OUT_PATH}: {e}");
    } else {
        println!("# wrote {OUT_PATH}");
    }
}
