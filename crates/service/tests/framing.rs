//! Property tests for the fragmented-read protocol framing.
//!
//! The event front end receives request lines in whatever byte fragments
//! the kernel delivers — one byte at a time in the worst case — and
//! reassembles them with [`LineBuffer`]. These properties pin the framing
//! invariants the server relies on:
//!
//! * any fragmentation of a byte stream yields exactly the original lines,
//!   in order, with nothing left buffered;
//! * an unterminated line longer than the cap is always rejected, however
//!   it was fragmented;
//! * a live server (both front ends) answers a pipelined request stream
//!   correctly regardless of how the writes were split.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;

use proptest::prelude::*;
use ringrt_net::LineBuffer;
use ringrt_service::{spawn, Frontend, ServiceConfig, MAX_LINE_BYTES};

/// Cuts `stream` at the (projected, sorted) cut points and feeds the
/// fragments through a [`LineBuffer`], returning every line extracted.
fn feed_fragmented(
    stream: &[u8],
    cuts: &[proptest::sample::Index],
    max_line: usize,
) -> Result<(Vec<Vec<u8>>, bool), ringrt_net::LineTooLong> {
    let mut points: Vec<usize> = cuts
        .iter()
        .map(|i| i.index(stream.len().max(1)).min(stream.len()))
        .collect();
    points.sort_unstable();
    points.push(stream.len());
    let mut lb = LineBuffer::new(max_line);
    let mut got = Vec::new();
    let mut prev = 0;
    for p in points {
        lb.extend(&stream[prev..p]);
        prev = p;
        while let Some(line) = lb.next_line()? {
            got.push(line.into_bytes());
        }
    }
    Ok((got, lb.has_partial()))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Random lines, random split points: reassembly is exact and total.
    #[test]
    fn any_fragmentation_reassembles_the_original_lines(
        lines in prop::collection::vec(prop::collection::vec(97u8..123, 0..40), 1..16),
        cuts in prop::collection::vec(any::<prop::sample::Index>(), 0..32),
    ) {
        let mut stream = Vec::new();
        for line in &lines {
            stream.extend_from_slice(line);
            stream.push(b'\n');
        }
        let (got, partial) = feed_fragmented(&stream, &cuts, MAX_LINE_BYTES).expect("within cap");
        prop_assert_eq!(got, lines);
        prop_assert!(!partial, "fully terminated stream must leave nothing buffered");
    }

    /// Byte-at-a-time delivery is just the finest fragmentation; a trailing
    /// unterminated fragment stays buffered as a partial line.
    #[test]
    fn byte_at_a_time_with_trailing_partial(
        lines in prop::collection::vec(prop::collection::vec(32u8..127, 0..24), 1..8),
        tail in prop::collection::vec(32u8..127, 0..24),
    ) {
        let mut lb = LineBuffer::new(MAX_LINE_BYTES);
        let mut got = Vec::new();
        for line in &lines {
            for &b in line {
                lb.extend(&[b]);
                prop_assert_eq!(lb.next_line().expect("within cap"), None);
            }
            lb.extend(b"\n");
            let out = lb.next_line().expect("within cap").expect("line complete");
            got.push(out.into_bytes());
        }
        prop_assert_eq!(&got, &lines);
        for &b in &tail {
            lb.extend(&[b]);
        }
        prop_assert_eq!(lb.has_partial(), !tail.is_empty());
        prop_assert_eq!(lb.pending_bytes(), tail.len());
    }

    /// However an oversized unterminated line is fragmented, the buffer
    /// rejects it no later than the first full-stream pass — it never
    /// buffers past the cap waiting for a newline that may never come.
    #[test]
    fn oversized_lines_are_always_rejected(
        cap in 8usize..64,
        excess in 1usize..64,
        cuts in prop::collection::vec(any::<prop::sample::Index>(), 0..8),
    ) {
        let stream = vec![b'x'; cap + excess];
        let result = feed_fragmented(&stream, &cuts, cap);
        prop_assert!(result.is_err(), "{} bytes past a {} cap must be rejected", excess, cap);
    }

    /// A terminated line exactly at the cap survives any fragmentation;
    /// one byte more never does.
    #[test]
    fn cap_boundary_is_exact(
        cap in 4usize..64,
        cuts in prop::collection::vec(any::<prop::sample::Index>(), 0..6),
    ) {
        let mut at_cap = vec![b'y'; cap];
        at_cap.push(b'\n');
        let (got, _) = feed_fragmented(&at_cap, &cuts, cap).expect("at-cap line is legal");
        prop_assert_eq!(got.len(), 1);
        prop_assert_eq!(got[0].len(), cap);

        let mut over = vec![b'y'; cap + 1];
        over.push(b'\n');
        prop_assert!(feed_fragmented(&over, &cuts, cap).is_err());
    }
}

/// Sends `payload` to a live server in the given fragment sizes, then
/// reads `responses` lines back.
fn roundtrip_fragmented(
    frontend: Frontend,
    payload: &[u8],
    sizes: &[usize],
    responses: usize,
) -> Vec<String> {
    let server = spawn(ServiceConfig {
        addr: "127.0.0.1:0".to_owned(),
        workers: 2,
        queue_depth: 8,
        frontend,
        ..ServiceConfig::default()
    })
    .expect("spawn server");
    let stream = TcpStream::connect(server.addr()).expect("connect");
    let mut writer = stream.try_clone().expect("clone");
    let mut offset = 0;
    for &size in sizes.iter().cycle() {
        if offset >= payload.len() {
            break;
        }
        let end = (offset + size.max(1)).min(payload.len());
        writer
            .write_all(&payload[offset..end])
            .expect("send fragment");
        writer.flush().expect("flush fragment");
        offset = end;
    }
    let mut reader = BufReader::new(stream);
    let mut got = Vec::new();
    for _ in 0..responses {
        let mut line = String::new();
        reader.read_line(&mut line).expect("recv");
        got.push(line.trim_end().to_owned());
    }
    drop(reader);
    server.join();
    got
}

/// The whole stack, blocking front end: a pipelined request stream split
/// into odd-sized fragments still parses frame by frame.
#[test]
fn threads_front_parses_fragmented_pipelines() {
    let payload = b"PING\nCHECK mbps=16 set=20,20000\nBATCH 2\nPING\nPING\nPING\n";
    for sizes in [&[1usize][..], &[3, 1, 7][..], &[64][..]] {
        let got = roundtrip_fragmented(Frontend::Threads, payload, sizes, 5);
        assert_eq!(got[0], "OK cmd=ping", "sizes {sizes:?}");
        assert!(
            got[1].starts_with("OK cmd=check"),
            "sizes {sizes:?}: {}",
            got[1]
        );
        assert_eq!(
            &got[2..],
            ["OK cmd=ping", "OK cmd=ping", "OK cmd=ping"],
            "sizes {sizes:?}"
        );
    }
}

/// Same stream, event front end: the readiness loop sees the same
/// fragments via epoll and must produce the same framing.
#[cfg(target_os = "linux")]
#[test]
fn event_front_parses_fragmented_pipelines() {
    let payload = b"PING\nCHECK mbps=16 set=20,20000\nBATCH 2\nPING\nPING\nPING\n";
    for sizes in [&[1usize][..], &[3, 1, 7][..], &[64][..]] {
        let got = roundtrip_fragmented(Frontend::Event, payload, sizes, 5);
        assert_eq!(got[0], "OK cmd=ping", "sizes {sizes:?}");
        assert!(
            got[1].starts_with("OK cmd=check"),
            "sizes {sizes:?}: {}",
            got[1]
        );
        assert_eq!(
            &got[2..],
            ["OK cmd=ping", "OK cmd=ping", "OK cmd=ping"],
            "sizes {sizes:?}"
        );
    }
}
