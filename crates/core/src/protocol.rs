//! Common interface over the two protocol analyses.

use core::fmt;

use ringrt_model::MessageSet;

/// A protocol-specific schedulability criterion.
///
/// Implementors decide whether a synchronous message set can be
/// *guaranteed* — every message of every stream always transmitted before
/// its deadline — under worst-case phasing and asynchronous interference.
/// The Monte-Carlo breakdown-utilization estimator drives this trait
/// generically over both protocols.
pub trait SchedulabilityTest {
    /// Returns `true` iff the message set is guaranteed by the protocol.
    fn is_schedulable(&self, set: &MessageSet) -> bool;

    /// Human-readable protocol name (Figure 1 legend style).
    fn protocol_name(&self) -> &'static str;
}

impl<T: SchedulabilityTest + ?Sized> SchedulabilityTest for &T {
    fn is_schedulable(&self, set: &MessageSet) -> bool {
        (**self).is_schedulable(set)
    }
    fn protocol_name(&self) -> &'static str {
        (**self).protocol_name()
    }
}

impl<T: SchedulabilityTest + ?Sized> SchedulabilityTest for Box<T> {
    fn is_schedulable(&self, set: &MessageSet) -> bool {
        (**self).is_schedulable(set)
    }
    fn protocol_name(&self) -> &'static str {
        (**self).protocol_name()
    }
}

/// The two protocol families compared by the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Protocol {
    /// Priority-driven protocol (IEEE 802.5 family).
    PriorityDriven,
    /// Timed token protocol (FDDI family).
    TimedToken,
}

impl fmt::Display for Protocol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Protocol::PriorityDriven => f.write_str("priority driven protocol"),
            Protocol::TimedToken => f.write_str("timed token protocol"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        assert_eq!(
            Protocol::PriorityDriven.to_string(),
            "priority driven protocol"
        );
        assert_eq!(Protocol::TimedToken.to_string(), "timed token protocol");
    }

    #[test]
    fn trait_object_safe() {
        // The trait must remain usable as `&dyn SchedulabilityTest`.
        fn _takes_dyn(_t: &dyn SchedulabilityTest) {}
    }
}
