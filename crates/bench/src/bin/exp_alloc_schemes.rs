//! ALLOC — the paper's §5.2 claim that the *local* synchronous bandwidth
//! allocation scheme performs close to the optimal scheme on average while
//! needing only local information.
//!
//! Compares the implemented allocation schemes' average breakdown
//! utilization at several bandwidths over identical message-set samples.

use ringrt_bench::{banner, ExpOptions};
use ringrt_breakdown::sweep::alloc_scheme_sweep;
use ringrt_breakdown::table::{cell, Table};

fn main() {
    let opts = ExpOptions::from_env();
    banner(
        "ALLOC",
        "FDDI ABU by synchronous-bandwidth allocation scheme",
        &opts,
    );

    let cfg = opts.sweep_config();
    let mut table = Table::new(&["bandwidth_mbps", "scheme", "abu", "ci95", "infeasible"]);
    for mbps in [10.0, 100.0, 1000.0] {
        let rows = alloc_scheme_sweep(mbps, &cfg);
        for r in &rows {
            table.push_row(&[
                cell(mbps, 1),
                r.scheme.label().into(),
                cell(r.estimate.mean, 4),
                cell(r.estimate.ci95, 4),
                r.estimate.infeasible_sets.to_string(),
            ]);
        }
        let best = rows
            .iter()
            .max_by(|a, b| a.estimate.mean.total_cmp(&b.estimate.mean))
            .expect("non-empty");
        println!(
            "# {mbps} Mbps: best scheme = {} (ABU {:.3})",
            best.scheme, best.estimate.mean
        );
    }
    println!();
    print!("{}", table.to_csv());
    println!();
    println!("# paper: the local scheme is competitive with the optimal scheme on average,");
    println!("# particularly when TTRT is chosen by the √(Θ'·P_min) rule.");
}
