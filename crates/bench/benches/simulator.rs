//! Criterion benchmarks of the frame-level simulators: events per second
//! of simulated ring time, for both MACs, quiet and loaded.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use rand::rngs::StdRng;
use rand::SeedableRng;

use ringrt_core::pdp::PdpVariant;
use ringrt_model::{FrameFormat, MessageSet, RingConfig};
use ringrt_sim::{PdpSimulator, SimConfig, TtpSimulator};
use ringrt_units::{Bandwidth, Seconds};
use ringrt_workload::MessageSetGenerator;

fn sample_set(stations: usize) -> MessageSet {
    MessageSetGenerator::paper_population(stations)
        .generate(&mut StdRng::seed_from_u64(3))
        .with_scaled_lengths(0.3)
}

fn bench_ttp_sim(c: &mut Criterion) {
    let mut group = c.benchmark_group("ttp_simulator_100ms");
    group.sample_size(10);
    let n = 20;
    let set = sample_set(n);
    let ring = RingConfig::fddi(n, Bandwidth::from_mbps(100.0));
    for (label, load) in [("quiet", 0.0), ("async_30pct", 0.3)] {
        let config = SimConfig::new(ring, Seconds::from_millis(100.0)).with_async_load(load);
        group.bench_function(label, |b| {
            b.iter(|| {
                let sim = TtpSimulator::from_analysis(black_box(&set), config)
                    .expect("feasible allocation");
                black_box(sim.run().completed())
            })
        });
    }
    group.finish();
}

fn bench_pdp_sim(c: &mut Criterion) {
    let mut group = c.benchmark_group("pdp_simulator_100ms");
    group.sample_size(10);
    let n = 20;
    let set = sample_set(n);
    let ring = RingConfig::ieee_802_5(n, Bandwidth::from_mbps(4.0));
    let config = SimConfig::new(ring, Seconds::from_millis(100.0));
    for variant in [PdpVariant::Standard, PdpVariant::Modified] {
        group.bench_function(variant.label(), |b| {
            b.iter(|| {
                let sim = PdpSimulator::new(
                    black_box(&set),
                    config,
                    FrameFormat::paper_default(),
                    variant,
                );
                black_box(sim.run().completed())
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_ttp_sim, bench_pdp_sim);
criterion_main!(benches);
