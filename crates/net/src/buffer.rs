//! Per-connection read/write buffers with newline framing.
//!
//! The wire protocol is line-oriented: one request or response per
//! `\n`-terminated line. [`LineBuffer`] accumulates whatever byte
//! fragments the socket delivers and yields complete lines; it enforces a
//! maximum line length so a peer trickling an endless unterminated line
//! (slow loris) cannot grow the buffer without bound. [`WriteBuffer`]
//! holds response bytes that did not fit in the socket's send buffer and
//! flushes them as writable readiness arrives.

use std::io::{self, Write};

/// Raised when a peer exceeds the configured line-length cap without
/// sending a terminating newline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LineTooLong {
    /// The configured cap in bytes (terminator excluded).
    pub max: usize,
}

impl std::fmt::Display for LineTooLong {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "request line exceeds {} bytes", self.max)
    }
}

impl std::error::Error for LineTooLong {}

/// Reassembles `\n`-framed lines from arbitrary byte fragments.
#[derive(Debug)]
pub struct LineBuffer {
    buf: Vec<u8>,
    /// Offset of the first unconsumed byte in `buf`.
    start: usize,
    max_line: usize,
}

impl LineBuffer {
    /// A buffer rejecting lines longer than `max_line` bytes (excluding
    /// the `\n`). Allocates nothing until bytes arrive.
    #[must_use]
    pub fn new(max_line: usize) -> LineBuffer {
        LineBuffer {
            buf: Vec::new(),
            start: 0,
            max_line: max_line.max(1),
        }
    }

    /// Appends a fragment read from the socket.
    pub fn extend(&mut self, bytes: &[u8]) {
        // Reclaim consumed prefix before growing, so a long-lived
        // connection's buffer stays proportional to its unconsumed tail.
        if self.start > 0 && (self.start >= 4096 || self.start == self.buf.len()) {
            self.buf.drain(..self.start);
            self.start = 0;
        }
        self.buf.extend_from_slice(bytes);
    }

    /// Pops the next complete line, stripped of `\n` (and a preceding
    /// `\r`, for telnet-style clients).
    ///
    /// Returns `Ok(None)` when no full line is buffered yet and
    /// `Err(LineTooLong)` once the unterminated tail exceeds the cap —
    /// at which point the connection should be answered with an error
    /// and closed, since resynchronizing mid-line is impossible.
    pub fn next_line(&mut self) -> Result<Option<String>, LineTooLong> {
        let tail = &self.buf[self.start..];
        match tail.iter().position(|&b| b == b'\n') {
            Some(pos) => {
                if pos > self.max_line {
                    return Err(LineTooLong { max: self.max_line });
                }
                let mut end = pos;
                if end > 0 && tail[end - 1] == b'\r' {
                    end -= 1;
                }
                let line = String::from_utf8_lossy(&tail[..end]).into_owned();
                self.start += pos + 1;
                Ok(Some(line))
            }
            None if tail.len() > self.max_line => Err(LineTooLong { max: self.max_line }),
            None => Ok(None),
        }
    }

    /// True when bytes of an unterminated line are pending — the state
    /// the per-connection read deadline clocks against.
    #[must_use]
    pub fn has_partial(&self) -> bool {
        self.start < self.buf.len()
    }

    /// Bytes currently buffered (unconsumed).
    #[must_use]
    pub fn pending_bytes(&self) -> usize {
        self.buf.len() - self.start
    }
}

/// Buffered response bytes awaiting socket writability.
#[derive(Debug, Default)]
pub struct WriteBuffer {
    buf: Vec<u8>,
    start: usize,
}

impl WriteBuffer {
    /// An empty buffer.
    #[must_use]
    pub fn new() -> WriteBuffer {
        WriteBuffer::default()
    }

    /// Queues response bytes for flushing.
    pub fn push(&mut self, bytes: &[u8]) {
        if self.start > 0 && self.start == self.buf.len() {
            self.buf.clear();
            self.start = 0;
        }
        self.buf.extend_from_slice(bytes);
    }

    /// True when everything queued has been flushed.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.start >= self.buf.len()
    }

    /// Bytes still awaiting flush.
    #[must_use]
    pub fn pending_bytes(&self) -> usize {
        self.buf.len() - self.start
    }

    /// Writes as much as the socket accepts.
    ///
    /// Returns `Ok(true)` when the buffer fully drained, `Ok(false)` when
    /// the socket would block with bytes still pending (caller should
    /// request writable interest), and `Err` on a fatal socket error.
    pub fn flush_to<W: Write>(&mut self, sink: &mut W) -> io::Result<bool> {
        while self.start < self.buf.len() {
            match sink.write(&self.buf[self.start..]) {
                Ok(0) => {
                    return Err(io::Error::new(
                        io::ErrorKind::WriteZero,
                        "socket accepted zero bytes",
                    ))
                }
                Ok(n) => self.start += n,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return Ok(false),
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
        self.buf.clear();
        self.start = 0;
        Ok(true)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reassembles_lines_split_across_fragments() {
        let mut lb = LineBuffer::new(64);
        lb.extend(b"PI");
        assert_eq!(lb.next_line().unwrap(), None);
        assert!(lb.has_partial());
        lb.extend(b"NG\nSTAT");
        assert_eq!(lb.next_line().unwrap().as_deref(), Some("PING"));
        assert_eq!(lb.next_line().unwrap(), None);
        lb.extend(b"S\n");
        assert_eq!(lb.next_line().unwrap().as_deref(), Some("STATS"));
        assert!(!lb.has_partial());
    }

    #[test]
    fn byte_at_a_time_delivery() {
        let mut lb = LineBuffer::new(64);
        for &b in b"CHECK proto=pdp\n" {
            lb.extend(&[b]);
        }
        assert_eq!(lb.next_line().unwrap().as_deref(), Some("CHECK proto=pdp"));
    }

    #[test]
    fn strips_carriage_return_and_handles_empty_lines() {
        let mut lb = LineBuffer::new(64);
        lb.extend(b"PING\r\n\n");
        assert_eq!(lb.next_line().unwrap().as_deref(), Some("PING"));
        assert_eq!(lb.next_line().unwrap().as_deref(), Some(""));
        assert_eq!(lb.next_line().unwrap(), None);
    }

    #[test]
    fn oversized_unterminated_line_is_rejected() {
        let mut lb = LineBuffer::new(8);
        lb.extend(b"ABCDEFGHI"); // 9 bytes, no newline
        assert_eq!(lb.next_line(), Err(LineTooLong { max: 8 }));
    }

    #[test]
    fn oversized_terminated_line_is_rejected_too() {
        let mut lb = LineBuffer::new(4);
        lb.extend(b"ABCDEFGH\n");
        assert_eq!(lb.next_line(), Err(LineTooLong { max: 4 }));
    }

    #[test]
    fn line_exactly_at_cap_passes() {
        let mut lb = LineBuffer::new(4);
        lb.extend(b"ABCD\n");
        assert_eq!(lb.next_line().unwrap().as_deref(), Some("ABCD"));
    }

    #[test]
    fn consumed_prefix_is_reclaimed() {
        let mut lb = LineBuffer::new(16);
        for _ in 0..1024 {
            lb.extend(b"PING\n");
            assert_eq!(lb.next_line().unwrap().as_deref(), Some("PING"));
        }
        assert!(
            lb.buf.capacity() < 16 * 1024,
            "buffer must not grow with consumed traffic (cap {})",
            lb.buf.capacity()
        );
    }

    #[test]
    fn write_buffer_tracks_partial_flushes() {
        struct Trickle(Vec<u8>, usize);
        impl Write for Trickle {
            fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
                if self.1 == 0 {
                    self.1 += 1;
                    return Err(io::Error::new(io::ErrorKind::WouldBlock, "full"));
                }
                let n = buf.len().min(3);
                self.0.extend_from_slice(&buf[..n]);
                Ok(n)
            }
            fn flush(&mut self) -> io::Result<()> {
                Ok(())
            }
        }

        let mut wb = WriteBuffer::new();
        wb.push(b"OK pong\n");
        let mut sink = Trickle(Vec::new(), 0);
        assert!(!wb.flush_to(&mut sink).unwrap(), "first write blocks");
        assert_eq!(wb.pending_bytes(), 8);
        assert!(wb.flush_to(&mut sink).unwrap(), "then drains in chunks");
        assert!(wb.is_empty());
        assert_eq!(sink.0, b"OK pong\n");
    }
}
