//! Deterministic message-set scenarios for examples and integration tests.
//!
//! Each scenario sketches a workload family the paper's introduction
//! motivates: embedded control loops on a low-speed ring, a high-speed
//! backbone (NASA's Space Station Freedom selected an FDDI ring), and a
//! mixed factory cell.

use ringrt_model::{MessageSet, SyncStream};
use ringrt_units::{Bits, Bytes, Seconds};

/// An avionics-style control network: a handful of fast, small control
/// loops plus slower telemetry, sized for a 1–4 Mbps ring (the regime
/// where the paper recommends the priority-driven protocol; at 1 Mbps the
/// FDDI timed token cannot guarantee this set but IEEE 802.5 can).
///
/// Streams (period, payload): 10 ms/64 B, 20 ms/128 B, 40 ms/256 B,
/// 80 ms/512 B, 160 ms/2 KiB sensor block, 320 ms/4 KiB log flush.
#[must_use]
pub fn avionics_control() -> MessageSet {
    MessageSet::new(vec![
        SyncStream::new(Seconds::from_millis(10.0), Bytes::new(64).to_bits()),
        SyncStream::new(Seconds::from_millis(20.0), Bytes::new(128).to_bits()),
        SyncStream::new(Seconds::from_millis(40.0), Bytes::new(256).to_bits()),
        SyncStream::new(Seconds::from_millis(80.0), Bytes::new(512).to_bits()),
        SyncStream::new(Seconds::from_millis(160.0), Bytes::new(2048).to_bits()),
        SyncStream::new(Seconds::from_millis(320.0), Bytes::new(4096).to_bits()),
    ])
    .expect("scenario parameters are valid")
}

/// A space-station-backbone-style workload: video, voice, telemetry and
/// housekeeping over a 100 Mbps FDDI ring (the regime where the paper
/// recommends the timed token protocol).
///
/// Sixteen stations: four 30 ms video feeds of 32 KiB, four 20 ms voice
/// trunks of 2 KiB, four 100 ms telemetry streams of 32 KiB, and four
/// 500 ms housekeeping streams of 128 KiB. At 100 Mbps the timed token
/// protocol guarantees this set while the standard IEEE 802.5
/// implementation cannot.
#[must_use]
pub fn space_station_backbone() -> MessageSet {
    let mut streams = Vec::new();
    for _ in 0..4 {
        streams.push(SyncStream::new(
            Seconds::from_millis(30.0),
            Bytes::new(32 * 1024).to_bits(),
        ));
    }
    for _ in 0..4 {
        streams.push(SyncStream::new(
            Seconds::from_millis(20.0),
            Bytes::new(2 * 1024).to_bits(),
        ));
    }
    for _ in 0..4 {
        streams.push(SyncStream::new(
            Seconds::from_millis(100.0),
            Bytes::new(32 * 1024).to_bits(),
        ));
    }
    for _ in 0..4 {
        streams.push(SyncStream::new(
            Seconds::from_millis(500.0),
            Bytes::new(128 * 1024).to_bits(),
        ));
    }
    MessageSet::new(streams).expect("scenario parameters are valid")
}

/// A factory-cell workload: a moderate mix of PLC scan cycles and vision
/// snapshots, interesting near the protocols' crossover bandwidth
/// (~10–50 Mbps).
#[must_use]
pub fn factory_cell() -> MessageSet {
    MessageSet::new(vec![
        // Eight PLC scan loops.
        SyncStream::new(Seconds::from_millis(25.0), Bits::new(2_048)),
        SyncStream::new(Seconds::from_millis(25.0), Bits::new(2_048)),
        SyncStream::new(Seconds::from_millis(50.0), Bits::new(4_096)),
        SyncStream::new(Seconds::from_millis(50.0), Bits::new(4_096)),
        SyncStream::new(Seconds::from_millis(50.0), Bits::new(4_096)),
        SyncStream::new(Seconds::from_millis(100.0), Bits::new(8_192)),
        SyncStream::new(Seconds::from_millis(100.0), Bits::new(8_192)),
        SyncStream::new(Seconds::from_millis(100.0), Bits::new(8_192)),
        // Two vision snapshots.
        SyncStream::new(Seconds::from_millis(200.0), Bytes::new(48 * 1024).to_bits()),
        SyncStream::new(Seconds::from_millis(250.0), Bytes::new(64 * 1024).to_bits()),
    ])
    .expect("scenario parameters are valid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use ringrt_units::Bandwidth;

    #[test]
    fn scenarios_are_valid_and_sized() {
        assert_eq!(avionics_control().len(), 6);
        assert_eq!(space_station_backbone().len(), 16);
        assert_eq!(factory_cell().len(), 10);
    }

    #[test]
    fn avionics_fits_a_1mbps_ring() {
        let u = avionics_control().utilization(Bandwidth::from_mbps(1.0));
        assert!(u > 0.2 && u < 0.6, "avionics utilization {u}");
    }

    #[test]
    fn backbone_fits_a_100mbps_ring() {
        let u = space_station_backbone().utilization(Bandwidth::from_mbps(100.0));
        assert!(u > 0.3 && u < 1.0, "backbone utilization {u}");
    }

    #[test]
    fn factory_cell_periods_span_a_decade() {
        let set = factory_cell();
        assert!((set.max_period() / set.min_period() - 10.0).abs() < 1e-9);
    }
}
