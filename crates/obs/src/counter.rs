//! A cache-padded sharded counter for paths too hot even for the
//! flight recorder.
//!
//! The recorder's [`crate::Span`] costs two clock reads plus a sharded
//! ring push (~32 ns) — invisible on a millisecond analysis but ~2% of
//! a ~2 µs cache hit. [`ShardedCounter`] is the tier below: one relaxed
//! `fetch_add` on a cache-line-padded shard chosen by thread identity
//! (~a few ns, no clock read, no lock, no allocation). The service's
//! cache-hit fast path aggregates into two of these (hit count and
//! total latency) instead of emitting per-stage spans, and uses the
//! returned shard-local value to *sample* one full span per N hits.

use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};

/// Number of independent shards. Matches the recorder's shard count:
/// enough that a 16-worker service rarely collides two hot threads on
/// one cache line.
const SHARDS: usize = 16;

/// One shard, padded out to a full cache line so neighboring shards
/// never false-share.
#[derive(Debug, Default)]
#[repr(align(64))]
struct PaddedShard {
    value: AtomicU64,
}

thread_local! {
    /// Hash of this thread's id, computed once per thread (same idiom as
    /// the recorder's shard selection).
    static TID_HASH: u64 = {
        let mut h = DefaultHasher::new();
        std::thread::current().id().hash(&mut h);
        h.finish()
    };
}

/// A monotone `u64` counter sharded across padded cache lines.
///
/// `add` touches exactly one shard (selected per thread), so concurrent
/// writers on different threads proceed without cache-line ping-pong.
/// `sum` folds all shards in a single pass; because every shard is
/// monotone, the result is a consistent lower bound of the true count
/// at return time (exact once writers quiesce).
#[derive(Debug, Default)]
pub struct ShardedCounter {
    shards: [PaddedShard; SHARDS],
}

impl ShardedCounter {
    /// A zeroed counter.
    #[must_use]
    pub fn new() -> Self {
        ShardedCounter::default()
    }

    /// Adds `n`, returning the **shard-local** total after the add.
    ///
    /// The return value is not the global count — it is a cheap,
    /// per-thread-ish monotone stream, which is exactly what a sampling
    /// decision wants: `add(1) % 64 == 0` fires roughly once per 64
    /// events per shard with zero extra synchronization.
    pub fn add(&self, n: u64) -> u64 {
        let shard = &self.shards[Self::shard_index()];
        shard.value.fetch_add(n, Ordering::Relaxed).wrapping_add(n)
    }

    /// Folds all shards in one pass.
    #[must_use]
    pub fn sum(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.value.load(Ordering::Relaxed))
            .sum()
    }

    /// Zeroes every shard (measurement-window reset). Concurrent adds
    /// may land before or after the sweep; each is either kept or
    /// cleared whole — never torn.
    pub fn reset(&self) {
        for s in &self.shards {
            s.value.store(0, Ordering::Relaxed);
        }
    }

    fn shard_index() -> usize {
        TID_HASH.with(|t| (*t as usize) % SHARDS)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_and_sum_round_trip() {
        let c = ShardedCounter::new();
        for _ in 0..10 {
            c.add(3);
        }
        assert_eq!(c.sum(), 30);
        c.reset();
        assert_eq!(c.sum(), 0);
    }

    #[test]
    fn add_returns_a_monotone_shard_local_stream() {
        let c = ShardedCounter::new();
        let first = c.add(1);
        let second = c.add(1);
        assert_eq!(second, first + 1, "same thread, same shard");
    }

    #[test]
    fn concurrent_adds_are_all_counted() {
        let c = ShardedCounter::new();
        std::thread::scope(|scope| {
            for _ in 0..8 {
                scope.spawn(|| {
                    for _ in 0..1000 {
                        c.add(1);
                    }
                });
            }
        });
        assert_eq!(c.sum(), 8000);
    }

    #[test]
    fn shards_are_cache_line_sized() {
        assert_eq!(std::mem::align_of::<PaddedShard>(), 64);
        assert_eq!(std::mem::size_of::<PaddedShard>(), 64);
    }
}
