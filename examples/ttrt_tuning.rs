//! Tuning the Target Token Rotation Time for a concrete workload — the
//! paper's §5.2 in miniature.
//!
//! Johnson's bound only requires `TTRT ≤ P_min/2`, but the paper shows the
//! sweet spot is much lower, near `√(Θ'·P_min)`: long rotations waste
//! guaranteed visits (`q_i = ⌊P_i/TTRT⌋` shrinks), very short rotations
//! drown in per-rotation overhead `Θ'`. This example sweeps fixed TTRT
//! values for the factory-cell scenario and compares the best against the
//! heuristic — then proves the chosen configuration in simulation.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example ttrt_tuning
//! ```

use ringrt::breakdown::table::{cell, Table};
use ringrt::breakdown::SaturationSearch;
use ringrt::prelude::*;
use ringrt::workload::scenarios;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let set = scenarios::factory_cell();
    let bw = Bandwidth::from_mbps(25.0);
    let ring = RingConfig::fddi(set.len(), bw);
    let base = TtpAnalyzer::with_defaults(ring);
    let theta_prime = base.theta_prime();
    let p_min = set.min_period();
    println!(
        "factory cell on {bw} FDDI: U = {:.3}, Θ' = {}, P_min = {}\n",
        set.utilization(bw),
        theta_prime,
        p_min
    );

    // Sweep fixed TTRTs; score each by how far the workload could grow
    // before Theorem 5.1 breaks (breakdown scale).
    let search = SaturationSearch::default();
    let mut table = Table::new(&[
        "ttrt_ms",
        "schedulable",
        "breakdown_scale",
        "breakdown_util",
    ]);
    let mut best: Option<(f64, Seconds)> = None;
    for k in 0..12 {
        let f = k as f64 / 11.0;
        let lo = (theta_prime.as_secs_f64() * 1.5).max(1e-4);
        let hi = (p_min / 2.0).as_secs_f64();
        let ttrt = Seconds::new(lo * (hi / lo).powf(f));
        let analyzer = base.with_ttrt_policy(TtrtPolicy::Fixed(ttrt));
        let verdict = analyzer.is_schedulable(&set);
        match search.saturate(&analyzer, &set, bw) {
            Some(sat) => {
                if best.is_none() || sat.scale > best.unwrap().0 {
                    best = Some((sat.scale, ttrt));
                }
                table.push_row(&[
                    cell(ttrt.as_millis(), 3),
                    verdict.to_string(),
                    cell(sat.scale, 3),
                    cell(sat.utilization, 3),
                ]);
            }
            None => {
                table.push_row(&[
                    cell(ttrt.as_millis(), 3),
                    verdict.to_string(),
                    "-".into(),
                    "-".into(),
                ]);
            }
        }
    }
    println!("{}", table.to_markdown());

    let (best_scale, best_ttrt) = best.expect("some TTRT works");
    let heuristic = base.ttrt_for(&set);
    println!("best fixed TTRT in sweep: {best_ttrt} (headroom ×{best_scale:.2})");
    println!("√(Θ'·P_min) heuristic:    {heuristic} — no sweep needed\n");

    // Prove the heuristic configuration end-to-end in simulation.
    let sim = TtpSimulator::from_analysis(
        &set,
        SimConfig::new(ring, Seconds::new(2.0)).with_async_load(0.2),
    )?
    .run();
    println!(
        "simulated 2 s at the heuristic TTRT: {} messages, {} misses, worst rotation {}",
        sim.completed(),
        sim.deadline_misses(),
        sim.max_rotation()
            .map(|d| d.to_string())
            .unwrap_or_default()
    );
    assert!(sim.all_deadlines_met());
    Ok(())
}
