//! The incremental admission engine: full and delta-updated re-runs of the
//! paper's Theorem 4.1 (PDP) and Theorem 5.1 (TTP) tests, driven directly
//! off a ring's columnar [`StreamStore`].
//!
//! # Why incremental re-analysis is sound
//!
//! **PDP (Theorem 4.1):** the test runs the Lehoczky-style response-time
//! analysis level by level in deadline-monotonic order. Admitting a stream
//! at DM rank `r` leaves every higher-priority level's task set — and the
//! blocking bound `B = 2·max(F, Θ)`, provided the station count is pinned —
//! untouched, so their response times are unchanged and only ranks `≥ r`
//! need re-testing. The store's maintained DM index supplies both the
//! newcomer's rank and the DM iteration order without cloning or sorting
//! anything. Removing a stream only removes interference, so a schedulable
//! set stays schedulable with **zero** evaluations. Both shortcuts require
//! the stored set to already be schedulable, which the registry
//! guarantees: failed admits are rolled back, and PDP removals preserve
//! schedulability.
//!
//! **TTP (Theorem 5.1):** the test is a single inequality
//! `Σ_i [C_i/(q_i−1) + F_ovhd] ≤ TTRT − Θ'`. The engine caches each
//! stream's term **and the running left-to-right sum**; when an admit
//! leaves the negotiated TTRT *bit-identical* (and the effective station
//! count, hence `Θ'`, unchanged), the new sum is `cached_sum + new_term` —
//! exactly the float operation the full test would perform last, so the
//! incremental verdict is bit-identical to recomputation in **O(1)**. A
//! removal refolds the surviving cached terms (float adds only, zero term
//! evaluations). Any TTRT or topology change falls back to the full test.
//!
//! Every incremental path carries a `debug_assert!` comparing its verdict
//! against a from-scratch recomputation, and the full path carries one
//! comparing the store-view analysis against the materialized
//! `MessageSet` path; the randomized equivalence sweep in the workspace
//! tests exercises the same properties in release builds.

use ringrt_core::pdp::{PdpAnalyzer, PdpVariant};
use ringrt_core::ttp::TtpAnalyzer;
use ringrt_model::{FrameFormat, RingConfig, SyncStream};
use ringrt_store::StreamStore;
use ringrt_units::Seconds;

use crate::spec::{ProtocolKind, RingSpec};

/// Verdict of one admission-control run, with the work it took.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CheckOutcome {
    /// Whether the (new) stream set is schedulable.
    pub schedulable: bool,
    /// Whether the incremental fast path was taken (`false` = full
    /// recomputation).
    pub incremental: bool,
    /// Scheduling-point work performed: fixed-point demand iterations for
    /// PDP, Theorem 5.1 term computations for TTP. The `STATS` counters
    /// that prove `ADMIT` is cheaper than a full `CHECK` aggregate this.
    pub evaluations: u64,
}

/// Cached per-stream Theorem 5.1 terms for a TTP ring, valid only for the
/// TTRT they were computed at. Derived state — never persisted; rebuilt by
/// the first full check after a restart.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct TtpCache {
    /// The TTRT the terms were computed at (compared bit-for-bit).
    pub ttrt: Seconds,
    /// `C_i/(q_i−1) + F_ovhd` per stream, in station order.
    pub terms: Vec<Seconds>,
    /// Left-to-right fold of `terms` — the full test's exact accumulation,
    /// kept current so an admit extends it with one addition.
    pub sum: Seconds,
}

/// How a check wants the ring's [`TtpCache`] updated. Returned instead of
/// a rebuilt cache so the incremental admit path never clones the O(n)
/// term vector.
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum CacheUpdate {
    /// Install a freshly computed cache (full recomputations; `None` for
    /// PDP rings, which cache nothing).
    Replace(Option<TtpCache>),
    /// Append the newcomer's term and advance the running sum (incremental
    /// TTP admit). O(1).
    Append {
        /// The newcomer's Theorem 5.1 term.
        term: Seconds,
        /// New running sum `old_sum + term`.
        sum: Seconds,
    },
    /// Drop the term at a station index and install the refolded sum
    /// (incremental TTP remove).
    Drop {
        /// Station index of the departed stream.
        index: usize,
        /// Left-to-right fold of the surviving terms.
        sum: Seconds,
    },
    /// Leave the cache untouched (incremental PDP paths).
    Keep,
}

impl CacheUpdate {
    /// Applies the update to a ring's cache slot.
    pub(crate) fn apply(self, slot: &mut Option<TtpCache>) {
        match self {
            CacheUpdate::Replace(cache) => *slot = cache,
            CacheUpdate::Append { term, sum } => {
                if let Some(cache) = slot {
                    cache.terms.push(term);
                    cache.sum = sum;
                }
            }
            CacheUpdate::Drop { index, sum } => {
                if let Some(cache) = slot {
                    cache.terms.remove(index);
                    cache.sum = sum;
                }
            }
            CacheUpdate::Keep => {}
        }
    }
}

fn pdp_analyzer(spec: &RingSpec, stations: usize, variant: PdpVariant) -> PdpAnalyzer {
    PdpAnalyzer::new(
        RingConfig::ieee_802_5(stations, spec.bandwidth()),
        FrameFormat::paper_default(),
        variant,
    )
}

fn ttp_analyzer(spec: &RingSpec, stations: usize) -> TtpAnalyzer {
    TtpAnalyzer::with_defaults(RingConfig::fddi(stations, spec.bandwidth()))
}

fn pdp_variant(protocol: ProtocolKind) -> Option<PdpVariant> {
    match protocol {
        ProtocolKind::Ieee8025 => Some(PdpVariant::Standard),
        ProtocolKind::Modified => Some(PdpVariant::Modified),
        ProtocolKind::Fddi => None,
    }
}

/// Sums terms left to right from zero — the exact accumulation order of
/// the full path, so incremental sums are bit-identical.
fn fold_terms(terms: impl IntoIterator<Item = Seconds>) -> Seconds {
    let mut sum = Seconds::ZERO;
    for t in terms {
        sum += t;
    }
    sum
}

/// Full (from-scratch) schedulability check of the store's streams on
/// `spec`'s ring. Runs over the store's maintained indexes (no
/// `MessageSet` materialization); debug builds cross-check the verdict
/// against the materialized path.
pub(crate) fn full_check(spec: &RingSpec, store: &StreamStore) -> (CheckOutcome, Option<TtpCache>) {
    let stations = spec.effective_stations(store.len());
    match pdp_variant(spec.protocol) {
        Some(variant) => {
            let counted = pdp_analyzer(spec, stations, variant).check_from_rank_view(store, 0);
            #[cfg(debug_assertions)]
            {
                let set = store
                    .message_set()
                    .expect("stored streams are valid")
                    .expect("full_check requires a non-empty store");
                let legacy = pdp_analyzer(spec, stations, variant).check_from_rank(&set, 0);
                debug_assert_eq!(
                    (counted.schedulable, counted.evaluations),
                    (legacy.schedulable, legacy.evaluations),
                    "store-view PDP check diverged from MessageSet path"
                );
            }
            (
                CheckOutcome {
                    schedulable: counted.schedulable,
                    incremental: false,
                    evaluations: counted.evaluations,
                },
                None,
            )
        }
        None => {
            let analyzer = ttp_analyzer(spec, stations);
            let ttrt = analyzer.ttrt_for_view(store);
            #[cfg(debug_assertions)]
            {
                let set = store
                    .message_set()
                    .expect("stored streams are valid")
                    .expect("full_check requires a non-empty store");
                debug_assert_eq!(
                    analyzer.ttrt_for(&set).as_secs_f64().to_bits(),
                    ttrt.as_secs_f64().to_bits(),
                    "store-view TTRT diverged from MessageSet path"
                );
            }
            let mut terms = Vec::with_capacity(store.len());
            let mut evaluations = 0u64;
            for (_, _, stream) in store.iter() {
                evaluations += 1;
                match analyzer.stream_term(&stream, ttrt) {
                    Some(term) => terms.push(term),
                    // q_i < 2: no deadline guarantee possible at this TTRT.
                    None => {
                        return (
                            CheckOutcome {
                                schedulable: false,
                                incremental: false,
                                evaluations,
                            },
                            None,
                        )
                    }
                }
            }
            let sum = fold_terms(terms.iter().copied());
            let schedulable = analyzer.terms_feasible(sum, ttrt);
            (
                CheckOutcome {
                    schedulable,
                    incremental: false,
                    evaluations,
                },
                Some(TtpCache { ttrt, terms, sum }),
            )
        }
    }
}

/// Admission check for a store that already holds the candidate as its
/// **newest** admission (station index `len − 1`): the registry admits
/// tentatively, checks, and rolls back on rejection. `new_name` /
/// `new_stream` identify the candidate. Takes the incremental path when
/// sound (see the module docs), otherwise falls back to [`full_check`].
pub(crate) fn admit_check(
    spec: &RingSpec,
    cache: Option<&TtpCache>,
    store: &StreamStore,
    new_name: &str,
    new_stream: &SyncStream,
) -> (CheckOutcome, CacheUpdate) {
    let old_len = store.len() - 1;
    let stations_unchanged =
        old_len > 0 && spec.effective_stations(old_len) == spec.effective_stations(store.len());
    if !stations_unchanged {
        let (outcome, cache) = full_check(spec, store);
        return (outcome, CacheUpdate::Replace(cache));
    }
    let stations = spec.effective_stations(store.len());
    match pdp_variant(spec.protocol) {
        Some(variant) => {
            // Only DM ranks at or below the newcomer's can have changed.
            let analyzer = pdp_analyzer(spec, stations, variant);
            let seq = store.seq_of(new_name).expect("candidate is stored");
            let rank = store.dm_rank_of(seq);
            let counted = analyzer.check_from_rank_view(store, rank);
            let outcome = CheckOutcome {
                schedulable: counted.schedulable,
                incremental: true,
                evaluations: counted.evaluations,
            };
            debug_assert_eq!(
                outcome.schedulable,
                full_check(spec, store).0.schedulable,
                "incremental PDP admit diverged from full recomputation"
            );
            (outcome, CacheUpdate::Keep)
        }
        None => {
            let analyzer = ttp_analyzer(spec, stations);
            let ttrt = analyzer.ttrt_for_view(store);
            let Some(cache) = cache.filter(|c| {
                c.ttrt.as_secs_f64().to_bits() == ttrt.as_secs_f64().to_bits()
                    && c.terms.len() == old_len
            }) else {
                let (outcome, cache) = full_check(spec, store);
                return (outcome, CacheUpdate::Replace(cache));
            };
            // One new term; the cached sum already folds the rest, so the
            // extended sum is a single addition — the same operation the
            // full test performs last, hence bit-identical.
            let (outcome, update) = match analyzer.stream_term(new_stream, ttrt) {
                Some(term) => {
                    let sum = cache.sum + term;
                    (
                        CheckOutcome {
                            schedulable: analyzer.terms_feasible(sum, ttrt),
                            incremental: true,
                            evaluations: 1,
                        },
                        CacheUpdate::Append { term, sum },
                    )
                }
                None => (
                    CheckOutcome {
                        schedulable: false,
                        incremental: true,
                        evaluations: 1,
                    },
                    CacheUpdate::Keep,
                ),
            };
            debug_assert_eq!(
                outcome.schedulable,
                full_check(spec, store).0.schedulable,
                "incremental TTP admit diverged from full recomputation"
            );
            (outcome, update)
        }
    }
}

/// Re-check after a removal: `store` is the **post-removal** state, the
/// departed stream held station index `removed_index` in a ring of
/// `old_len` streams. The mutation is already applied (removals are never
/// rejected); this judges the remaining set and updates the term cache.
pub(crate) fn remove_check(
    spec: &RingSpec,
    cache: Option<&TtpCache>,
    removed_index: usize,
    old_len: usize,
    store: &StreamStore,
) -> (CheckOutcome, CacheUpdate) {
    debug_assert_eq!(old_len, store.len() + 1);
    if store.is_empty() {
        // An empty ring is vacuously schedulable.
        return (
            CheckOutcome {
                schedulable: true,
                incremental: true,
                evaluations: 0,
            },
            CacheUpdate::Replace(None),
        );
    }
    if pdp_variant(spec.protocol).is_some() {
        // Removing a stream only removes interference (and can only shrink
        // the ring overheads), so a schedulable PDP set stays schedulable
        // with no work at all.
        let outcome = CheckOutcome {
            schedulable: true,
            incremental: true,
            evaluations: 0,
        };
        debug_assert_eq!(
            outcome.schedulable,
            full_check(spec, store).0.schedulable,
            "PDP removal broke schedulability — stored set was not schedulable?"
        );
        return (outcome, CacheUpdate::Keep);
    }
    let stations_unchanged =
        spec.effective_stations(old_len) == spec.effective_stations(store.len());
    let stations = spec.effective_stations(store.len());
    let analyzer = ttp_analyzer(spec, stations);
    let ttrt = analyzer.ttrt_for_view(store);
    let valid_cache = cache.filter(|c| {
        stations_unchanged
            && c.ttrt.as_secs_f64().to_bits() == ttrt.as_secs_f64().to_bits()
            && c.terms.len() == old_len
    });
    let Some(cache) = valid_cache else {
        // TTRT renegotiated (e.g. the min-deadline stream left) or topology
        // changed: removal CAN flip the verdict either way — recompute.
        let (outcome, cache) = full_check(spec, store);
        return (outcome, CacheUpdate::Replace(cache));
    };
    // Refold the surviving terms left to right: float additions only, no
    // Theorem 5.1 term evaluations.
    let sum = fold_terms(
        cache
            .terms
            .iter()
            .enumerate()
            .filter(|&(i, _)| i != removed_index)
            .map(|(_, &t)| t),
    );
    let outcome = CheckOutcome {
        schedulable: analyzer.terms_feasible(sum, ttrt),
        incremental: true,
        evaluations: 0,
    };
    debug_assert_eq!(
        outcome.schedulable,
        full_check(spec, store).0.schedulable,
        "incremental TTP removal diverged from full recomputation"
    );
    (
        outcome,
        CacheUpdate::Drop {
            index: removed_index,
            sum,
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use ringrt_units::{Bits, Seconds};

    fn stream(period_ms: f64, bits: u64) -> SyncStream {
        SyncStream::new(Seconds::from_millis(period_ms), Bits::new(bits))
    }

    fn store(streams: &[(f64, u64)]) -> StreamStore {
        let mut st = StreamStore::new();
        for (i, &(p, c)) in streams.iter().enumerate() {
            st.admit(&format!("s{i}"), stream(p, c));
        }
        st
    }

    fn pdp_spec() -> RingSpec {
        RingSpec {
            protocol: ProtocolKind::Modified,
            mbps: 16.0,
            stations: Some(16),
        }
    }

    fn ttp_spec() -> RingSpec {
        RingSpec {
            protocol: ProtocolKind::Fddi,
            mbps: 100.0,
            stations: Some(16),
        }
    }

    #[test]
    fn pdp_incremental_admit_matches_full_and_is_cheaper() {
        let spec = pdp_spec();
        let base = store(&[(20.0, 20_000), (50.0, 60_000), (100.0, 80_000)]);
        let (full, _) = full_check(&spec, &base);
        assert!(full.schedulable);
        assert!(!full.incremental);
        // Admit a slow (lowest-priority) stream: only its own level re-runs.
        let grown = store(&[
            (20.0, 20_000),
            (50.0, 60_000),
            (100.0, 80_000),
            (200.0, 10_000),
        ]);
        let (inc, update) = admit_check(&spec, None, &grown, "s3", &stream(200.0, 10_000));
        assert!(inc.schedulable);
        assert!(inc.incremental);
        assert_eq!(update, CacheUpdate::Keep);
        let (grown_full, _) = full_check(&spec, &grown);
        assert!(
            inc.evaluations < grown_full.evaluations,
            "{inc:?} vs {grown_full:?}"
        );
    }

    #[test]
    fn pdp_unpinned_stations_force_full_path() {
        let spec = RingSpec {
            stations: None,
            ..pdp_spec()
        };
        let grown = store(&[(20.0, 20_000), (50.0, 60_000)]);
        let (out, _) = admit_check(&spec, None, &grown, "s1", &stream(50.0, 60_000));
        assert!(!out.incremental);
    }

    #[test]
    fn pdp_removal_is_free() {
        let spec = pdp_spec();
        let remaining = store(&[(20.0, 20_000), (100.0, 80_000)]);
        let (out, update) = remove_check(&spec, None, 1, 3, &remaining);
        assert!(out.schedulable);
        assert!(out.incremental);
        assert_eq!(out.evaluations, 0);
        assert_eq!(update, CacheUpdate::Keep);
    }

    #[test]
    fn ttp_incremental_admit_reuses_terms() {
        let spec = ttp_spec();
        // Keep the min-deadline stream first so TTRT stays put on admit.
        let base = store(&[(20.0, 100_000), (50.0, 200_000)]);
        let (full, cache) = full_check(&spec, &base);
        assert!(full.schedulable);
        let cache = cache.expect("TTP full check caches terms");
        assert_eq!(cache.terms.len(), 2);
        let grown = store(&[(20.0, 100_000), (50.0, 200_000), (100.0, 400_000)]);
        let (inc, update) = admit_check(&spec, Some(&cache), &grown, "s2", &stream(100.0, 400_000));
        assert!(inc.schedulable);
        assert!(inc.incremental);
        assert_eq!(inc.evaluations, 1); // one new term, the sum reused
        let mut slot = Some(cache);
        update.apply(&mut slot);
        let updated = slot.expect("append preserves the cache");
        assert_eq!(updated.terms.len(), 3);
        assert_eq!(
            updated.sum.as_secs_f64().to_bits(),
            fold_terms(updated.terms.iter().copied())
                .as_secs_f64()
                .to_bits(),
            "running sum must equal the left-to-right refold bit for bit"
        );
    }

    #[test]
    fn ttp_ttrt_shift_falls_back_to_full() {
        let spec = ttp_spec();
        let base = store(&[(50.0, 200_000), (100.0, 400_000)]);
        let (_, cache) = full_check(&spec, &base);
        // The newcomer has the new minimum deadline → TTRT renegotiates.
        let grown = store(&[(50.0, 200_000), (100.0, 400_000), (10.0, 50_000)]);
        let (out, _) = admit_check(&spec, cache.as_ref(), &grown, "s2", &stream(10.0, 50_000));
        assert!(!out.incremental);
        assert_eq!(out.evaluations, 3);
    }

    #[test]
    fn ttp_removal_of_min_deadline_stream_recomputes() {
        let spec = ttp_spec();
        let base = store(&[(10.0, 50_000), (50.0, 200_000), (100.0, 400_000)]);
        let (_, cache) = full_check(&spec, &base);
        let remaining = store(&[(50.0, 200_000), (100.0, 400_000)]);
        let (out, _) = remove_check(&spec, cache.as_ref(), 0, 3, &remaining);
        assert!(!out.incremental); // TTRT changed
        let remaining2 = store(&[(10.0, 50_000), (100.0, 400_000)]);
        let (out2, update) = remove_check(&spec, cache.as_ref(), 1, 3, &remaining2);
        assert!(out2.incremental); // TTRT keeper stayed
        assert_eq!(out2.evaluations, 0);
        let mut slot = cache;
        update.apply(&mut slot);
        let updated = slot.expect("drop preserves the cache");
        assert_eq!(updated.terms.len(), 2);
        assert_eq!(
            updated.sum.as_secs_f64().to_bits(),
            fold_terms(updated.terms.iter().copied())
                .as_secs_f64()
                .to_bits()
        );
    }

    #[test]
    fn overloaded_admit_rejected_incrementally() {
        let spec = ttp_spec();
        let base = store(&[(20.0, 100_000)]);
        let (_, cache) = full_check(&spec, &base);
        // A hopeless hog (well past ring capacity) with a long period so
        // the TTRT is unchanged.
        let grown = store(&[(20.0, 100_000), (100.0, 12_000_000)]);
        let (out, _) = admit_check(
            &spec,
            cache.as_ref(),
            &grown,
            "s1",
            &stream(100.0, 12_000_000),
        );
        assert!(!out.schedulable);
        assert!(out.incremental);
    }

    #[test]
    fn empty_after_removal_is_schedulable() {
        let (out, update) = remove_check(&ttp_spec(), None, 0, 1, &StreamStore::new());
        assert!(out.schedulable);
        assert_eq!(update, CacheUpdate::Replace(None));
    }

    #[test]
    fn admit_after_interior_removal_stays_incremental() {
        // Remove from the middle (cache Drop), then admit again: the cached
        // running sum must still line up with the store's station order.
        let spec = ttp_spec();
        let mut st = store(&[(20.0, 100_000), (50.0, 200_000), (80.0, 150_000)]);
        let (_, cache) = full_check(&spec, &st);
        let mut slot = cache;
        st.remove("s1").expect("present");
        let (out, update) = remove_check(&spec, slot.as_ref(), 1, 3, &st);
        assert!(out.incremental);
        update.apply(&mut slot);
        st.admit("s3", stream(60.0, 120_000));
        let (out2, update2) = admit_check(&spec, slot.as_ref(), &st, "s3", &stream(60.0, 120_000));
        assert!(out2.incremental);
        assert_eq!(out2.evaluations, 1);
        update2.apply(&mut slot);
        let (full, fresh) = full_check(&spec, &st);
        assert_eq!(out2.schedulable, full.schedulable);
        let fresh = fresh.expect("ttp cache");
        let cached = slot.expect("cache maintained");
        assert_eq!(
            cached.sum.as_secs_f64().to_bits(),
            fresh.sum.as_secs_f64().to_bits(),
            "delta-maintained sum must equal a fresh recomputation bit for bit"
        );
    }
}
