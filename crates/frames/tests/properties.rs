//! Property tests of the frame codecs: round-trips, corruption detection,
//! and reservation-bidding laws.

use proptest::prelude::*;

use ringrt_frames::ieee8025::{AccessControl, DataFrame, Priority, Token};
use ringrt_frames::{fddi, FrameError};

proptest! {
    /// Any 802.5 data frame round-trips through encode/decode.
    #[test]
    fn ieee_data_frame_roundtrip(
        prio in 0u8..8,
        resv in 0u8..8,
        da in prop::array::uniform6(any::<u8>()),
        sa in prop::array::uniform6(any::<u8>()),
        payload in prop::collection::vec(any::<u8>(), 0..512),
    ) {
        let ac = AccessControl::frame(
            Priority::new(prio).unwrap(),
            Priority::new(resv).unwrap(),
        );
        let frame = DataFrame::new(ac, da, sa, payload);
        let back = DataFrame::decode(&frame.encode()).unwrap();
        prop_assert_eq!(back, frame);
    }

    /// Any FDDI data frame round-trips.
    #[test]
    fn fddi_data_frame_roundtrip(
        sync in any::<bool>(),
        da in prop::array::uniform6(any::<u8>()),
        sa in prop::array::uniform6(any::<u8>()),
        payload in prop::collection::vec(any::<u8>(), 0..512),
    ) {
        let class = if sync { fddi::FrameClass::Synchronous } else { fddi::FrameClass::Asynchronous };
        let frame = fddi::DataFrame::new(class, da, sa, payload);
        let back = fddi::DataFrame::decode(&frame.encode()).unwrap();
        prop_assert_eq!(back, frame);
    }

    /// Flipping any single payload/header bit (outside AC/FS/delimiters) is
    /// caught by the FCS.
    #[test]
    fn ieee_single_bit_corruption_detected(
        payload in prop::collection::vec(any::<u8>(), 1..64),
        byte_sel in any::<prop::sample::Index>(),
        bit in 0u8..8,
    ) {
        let ac = AccessControl::frame(Priority::new(3).unwrap(), Priority::LOWEST);
        let frame = DataFrame::new(ac, [1; 6], [2; 6], payload);
        let mut wire = frame.encode();
        // Corrupt within the FCS-covered region: FC..payload end.
        let covered = 2..wire.len() - 6;
        let idx = covered.start + byte_sel.index(covered.len());
        wire[idx] ^= 1 << bit;
        let caught = matches!(DataFrame::decode(&wire), Err(FrameError::BadChecksum { .. }));
        prop_assert!(caught, "corruption at byte {} bit {} went undetected", idx, bit);
    }

    /// The reservation field after any sequence of bids equals the maximum
    /// bid (or the initial value if it was higher).
    #[test]
    fn bidding_converges_to_max(bids in prop::collection::vec(0u8..8, 1..20)) {
        let mut ac = AccessControl::token(Priority::LOWEST);
        for &b in &bids {
            ac.bid(Priority::new(b).unwrap());
        }
        let max = bids.iter().copied().max().unwrap();
        prop_assert_eq!(ac.reservation().value(), max);
        // Priority field untouched by bidding.
        prop_assert_eq!(ac.priority(), Priority::LOWEST);
    }

    /// AC byte round-trips through its raw wire form.
    #[test]
    fn access_control_byte_roundtrip(byte in any::<u8>()) {
        let ac = AccessControl::from_byte(byte);
        prop_assert_eq!(ac.to_byte(), byte);
        // Derived fields stay within range.
        prop_assert!(ac.priority().value() <= 7);
        prop_assert!(ac.reservation().value() <= 7);
    }

    /// Wire length always equals overhead + 8·payload bytes, for both
    /// standards.
    #[test]
    fn wire_bits_formula(payload in prop::collection::vec(any::<u8>(), 0..256)) {
        let ac = AccessControl::frame(Priority::LOWEST, Priority::LOWEST);
        let ieee = DataFrame::new(ac, [0; 6], [0; 6], payload.clone());
        prop_assert_eq!(ieee.wire_bits(), ringrt_frames::ieee8025::OVERHEAD_BITS + payload.len() as u64 * 8);
        prop_assert_eq!(ieee.encode().len() as u64 * 8, ieee.wire_bits());
        let f = fddi::DataFrame::new(fddi::FrameClass::Synchronous, [0; 6], [0; 6], payload.clone());
        prop_assert_eq!(f.wire_bits(), fddi::OVERHEAD_BITS + payload.len() as u64 * 8);
        prop_assert_eq!(f.encode().len() as u64 * 8, f.wire_bits());
    }
}

#[test]
fn token_constants_match_network_model_defaults() {
    use ringrt_model::RingConfig;
    use ringrt_units::Bandwidth;
    // The model presets embed the same token lengths the codecs implement.
    let ring = RingConfig::ieee_802_5(1, Bandwidth::from_mbps(1.0));
    assert_eq!(
        ring.token_length().as_u64(),
        ringrt_frames::ieee8025::TOKEN_BITS
    );
    let ring = RingConfig::fddi(1, Bandwidth::from_mbps(1.0));
    assert_eq!(ring.token_length().as_u64(), fddi::TOKEN_BITS);
    assert_eq!(Token::new(Priority::LOWEST).encode().len() as u64 * 8, 24);
}
