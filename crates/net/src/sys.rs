//! Raw Linux syscall bindings for the poller, wakeup pipe, and rlimits.
//!
//! The workspace builds offline with no external crates, so instead of
//! pulling in `libc`/`mio` this module declares the handful of symbols the
//! event loop needs directly against the C library that `std` already
//! links — the same vendoring discipline as `vendor/rand` and friends.
//!
//! **All `unsafe` in `ringrt-net` lives in this file.** Everything it
//! exports is a safe, `io::Result`-returning wrapper; the rest of the
//! crate (and every dependent crate, including `ringrt-service`, which
//! carries `#![forbid(unsafe_code)]`) sees only those wrappers.
//!
//! On non-Linux targets the entry points exist but return
//! [`std::io::ErrorKind::Unsupported`], so the crate compiles everywhere
//! and callers can fall back to the blocking front end.

use std::io;

/// Raw file descriptor, declared locally so the crate's public API does
/// not depend on `std::os::unix` being available on the target.
pub type RawFd = i32;

/// Readable readiness (maps to `EPOLLIN`).
pub const READABLE: u32 = 0x001;
/// Writable readiness (maps to `EPOLLOUT`).
pub const WRITABLE: u32 = 0x004;
/// Error condition (maps to `EPOLLERR`; always reported, never requested).
pub const ERROR: u32 = 0x008;
/// Peer hangup (maps to `EPOLLHUP | EPOLLRDHUP`).
pub const HANGUP: u32 = 0x010 | 0x2000;

#[cfg(target_os = "linux")]
mod imp {
    use super::{io, RawFd, HANGUP};
    use std::os::raw::{c_int, c_void};

    const EPOLL_CTL_ADD: c_int = 1;
    const EPOLL_CTL_DEL: c_int = 2;
    const EPOLL_CTL_MOD: c_int = 3;
    /// Same bit as `O_CLOEXEC`.
    const EPOLL_CLOEXEC: c_int = 0o2_000_000;
    const O_NONBLOCK: c_int = 0o4_000;
    const RLIMIT_NOFILE: c_int = 7;

    /// Kernel `struct epoll_event`: packed on x86-64, naturally aligned on
    /// the other architectures (mirrors the C headers).
    #[repr(C)]
    #[cfg_attr(target_arch = "x86_64", repr(packed))]
    #[derive(Clone, Copy)]
    pub struct EpollEvent {
        pub events: u32,
        pub data: u64,
    }

    #[repr(C)]
    struct Rlimit {
        cur: u64,
        max: u64,
    }

    extern "C" {
        fn epoll_create1(flags: c_int) -> c_int;
        fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut EpollEvent) -> c_int;
        fn epoll_wait(
            epfd: c_int,
            events: *mut EpollEvent,
            maxevents: c_int,
            timeout: c_int,
        ) -> c_int;
        fn pipe2(fds: *mut c_int, flags: c_int) -> c_int;
        fn read(fd: c_int, buf: *mut c_void, count: usize) -> isize;
        fn write(fd: c_int, buf: *const c_void, count: usize) -> isize;
        fn close(fd: c_int) -> c_int;
        fn getrlimit(resource: c_int, rlim: *mut Rlimit) -> c_int;
        fn setrlimit(resource: c_int, rlim: *const Rlimit) -> c_int;
    }

    fn cvt(ret: c_int) -> io::Result<c_int> {
        if ret < 0 {
            Err(io::Error::last_os_error())
        } else {
            Ok(ret)
        }
    }

    pub fn epoll_create() -> io::Result<RawFd> {
        // SAFETY: no pointers involved; returns a new fd or -1.
        cvt(unsafe { epoll_create1(EPOLL_CLOEXEC) })
    }

    fn epoll_update(epfd: RawFd, op: c_int, fd: RawFd, events: u32, data: u64) -> io::Result<()> {
        let mut ev = EpollEvent { events, data };
        // SAFETY: `ev` outlives the call; the kernel copies it before
        // returning (it is ignored entirely for EPOLL_CTL_DEL).
        cvt(unsafe { epoll_ctl(epfd, op, fd, &mut ev) }).map(|_| ())
    }

    pub fn epoll_add(epfd: RawFd, fd: RawFd, events: u32, data: u64) -> io::Result<()> {
        epoll_update(epfd, EPOLL_CTL_ADD, fd, events | HANGUP, data)
    }

    pub fn epoll_mod(epfd: RawFd, fd: RawFd, events: u32, data: u64) -> io::Result<()> {
        epoll_update(epfd, EPOLL_CTL_MOD, fd, events | HANGUP, data)
    }

    pub fn epoll_del(epfd: RawFd, fd: RawFd) -> io::Result<()> {
        epoll_update(epfd, EPOLL_CTL_DEL, fd, 0, 0)
    }

    /// Waits for readiness, filling `out` with `(data, event-bits)` pairs.
    pub fn epoll_wait_into(
        epfd: RawFd,
        out: &mut Vec<(u64, u32)>,
        capacity: usize,
        timeout_ms: i32,
    ) -> io::Result<()> {
        out.clear();
        let mut raw: Vec<EpollEvent> = vec![EpollEvent { events: 0, data: 0 }; capacity.max(1)];
        // SAFETY: `raw` is a live, writable buffer of `raw.len()` events;
        // the kernel writes at most `maxevents` entries.
        let n = match cvt(unsafe {
            epoll_wait(epfd, raw.as_mut_ptr(), raw.len() as c_int, timeout_ms)
        }) {
            Ok(n) => n as usize,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => 0,
            Err(e) => return Err(e),
        };
        for ev in &raw[..n] {
            // Copy out of the (possibly packed) struct before use.
            let (data, events) = (ev.data, ev.events);
            out.push((data, events));
        }
        Ok(())
    }

    /// Creates a nonblocking close-on-exec pipe, returning `(read, write)`.
    pub fn nonblocking_pipe() -> io::Result<(RawFd, RawFd)> {
        let mut fds = [0 as c_int; 2];
        // SAFETY: `fds` is a live 2-element buffer, as pipe2 requires.
        cvt(unsafe { pipe2(fds.as_mut_ptr(), O_NONBLOCK | EPOLL_CLOEXEC) })?;
        Ok((fds[0], fds[1]))
    }

    pub fn read_fd(fd: RawFd, buf: &mut [u8]) -> io::Result<usize> {
        // SAFETY: `buf` is a live, writable slice of `buf.len()` bytes.
        let n = unsafe { read(fd, buf.as_mut_ptr().cast::<c_void>(), buf.len()) };
        if n < 0 {
            Err(io::Error::last_os_error())
        } else {
            Ok(n as usize)
        }
    }

    pub fn write_fd(fd: RawFd, buf: &[u8]) -> io::Result<usize> {
        // SAFETY: `buf` is a live, readable slice of `buf.len()` bytes.
        let n = unsafe { write(fd, buf.as_ptr().cast::<c_void>(), buf.len()) };
        if n < 0 {
            Err(io::Error::last_os_error())
        } else {
            Ok(n as usize)
        }
    }

    pub fn close_fd(fd: RawFd) -> io::Result<()> {
        // SAFETY: closing an owned descriptor; callers guarantee `fd` is
        // not used after this returns.
        cvt(unsafe { close(fd) }).map(|_| ())
    }

    pub fn nofile_limits() -> io::Result<(u64, u64)> {
        let mut lim = Rlimit { cur: 0, max: 0 };
        // SAFETY: `lim` is a live, writable struct of the ABI layout.
        cvt(unsafe { getrlimit(RLIMIT_NOFILE, &mut lim) })?;
        Ok((lim.cur, lim.max))
    }

    pub fn set_nofile_soft(soft: u64) -> io::Result<()> {
        let (_, max) = nofile_limits()?;
        let lim = Rlimit {
            cur: soft.min(max),
            max,
        };
        // SAFETY: `lim` is a live, readable struct of the ABI layout.
        cvt(unsafe { setrlimit(RLIMIT_NOFILE, &lim) }).map(|_| ())
    }
}

#[cfg(not(target_os = "linux"))]
mod imp {
    use super::{io, RawFd};

    fn unsupported<T>() -> io::Result<T> {
        Err(io::Error::new(
            io::ErrorKind::Unsupported,
            "ringrt-net readiness polling requires Linux epoll",
        ))
    }

    pub fn epoll_create() -> io::Result<RawFd> {
        unsupported()
    }
    pub fn epoll_add(_: RawFd, _: RawFd, _: u32, _: u64) -> io::Result<()> {
        unsupported()
    }
    pub fn epoll_mod(_: RawFd, _: RawFd, _: u32, _: u64) -> io::Result<()> {
        unsupported()
    }
    pub fn epoll_del(_: RawFd, _: RawFd) -> io::Result<()> {
        unsupported()
    }
    pub fn epoll_wait_into(_: RawFd, _: &mut Vec<(u64, u32)>, _: usize, _: i32) -> io::Result<()> {
        unsupported()
    }
    pub fn nonblocking_pipe() -> io::Result<(RawFd, RawFd)> {
        unsupported()
    }
    pub fn read_fd(_: RawFd, _: &mut [u8]) -> io::Result<usize> {
        unsupported()
    }
    pub fn write_fd(_: RawFd, _: &[u8]) -> io::Result<usize> {
        unsupported()
    }
    pub fn close_fd(_: RawFd) -> io::Result<()> {
        unsupported()
    }
    pub fn nofile_limits() -> io::Result<(u64, u64)> {
        unsupported()
    }
    pub fn set_nofile_soft(_: u64) -> io::Result<()> {
        unsupported()
    }
}

pub(crate) use imp::{
    close_fd, epoll_add, epoll_create, epoll_del, epoll_mod, epoll_wait_into, nofile_limits,
    nonblocking_pipe, read_fd, set_nofile_soft, write_fd,
};
