//! IEEE 802.5-1989 token ring frame formats.
//!
//! Layout of a data frame (octets):
//!
//! ```text
//! SD  AC  FC  DA(6)  SA(6)  INFO(n)  FCS(4)  ED  FS
//! ```
//!
//! and of a token: `SD AC ED` — 3 octets = 24 bits, the token length used
//! by the network model. The fixed data-frame framing is 21 octets =
//! [`OVERHEAD_BITS`] (168) bits; the paper assumes 112.
//!
//! The **access control** (AC) octet carries the fields the
//! priority-driven protocol arbitrates with: 3 priority bits, the token
//! bit, the monitor bit, and 3 reservation bits.

use crate::crc::crc32;
use crate::FrameError;

/// Fixed framing overhead of a data frame: SD + AC + FC + DA + SA + FCS +
/// ED + FS = 21 octets = 168 bits.
pub const OVERHEAD_BITS: u64 = 21 * 8;

/// Token length: SD + AC + ED = 3 octets = 24 bits (matches the network
/// model's default).
pub const TOKEN_BITS: u64 = 3 * 8;

/// The starting-delimiter code (J/K symbols approximated as a fixed byte).
const SD: u8 = 0xAC;
/// The ending-delimiter code.
const ED: u8 = 0xCD;

/// A priority level 0–7 (3 bits). Higher values = higher service priority
/// on the wire; the rate-monotonic mapping assigns shorter periods higher
/// wire priorities.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Priority(u8);

impl Priority {
    /// The lowest priority (0) — used by asynchronous traffic.
    pub const LOWEST: Priority = Priority(0);
    /// The highest priority (7).
    pub const HIGHEST: Priority = Priority(7);

    /// Creates a priority; `None` if `value > 7`.
    #[must_use]
    pub fn new(value: u8) -> Option<Self> {
        (value <= 7).then_some(Priority(value))
    }

    /// The raw 3-bit value.
    #[must_use]
    pub fn value(self) -> u8 {
        self.0
    }
}

impl core::fmt::Display for Priority {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "P{}", self.0)
    }
}

/// The access-control octet: `PPP T M RRR`.
///
/// * `PPP` — service priority of the token / frame;
/// * `T` — token bit (0 = token, 1 = data frame);
/// * `M` — monitor bit (set by the active monitor to catch orbiting
///   frames);
/// * `RRR` — reservation bits: stations bid here for the next token's
///   priority.
///
/// # Examples
///
/// ```
/// use ringrt_frames::ieee8025::{AccessControl, Priority};
///
/// let mut ac = AccessControl::token(Priority::new(3).unwrap());
/// assert!(ac.is_token());
/// // A station with a priority-5 message bids in the reservation field.
/// assert!(ac.bid(Priority::new(5).unwrap()));
/// assert_eq!(ac.reservation().value(), 5);
/// // A lower bid does not overwrite a higher one.
/// assert!(!ac.bid(Priority::new(2).unwrap()));
/// assert_eq!(ac.reservation().value(), 5);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct AccessControl(u8);

impl AccessControl {
    /// An AC byte describing a free token at `priority` with no
    /// reservation.
    #[must_use]
    pub fn token(priority: Priority) -> Self {
        AccessControl(priority.0 << 5)
    }

    /// An AC byte describing a data frame sent at `priority` carrying an
    /// existing `reservation`.
    #[must_use]
    pub fn frame(priority: Priority, reservation: Priority) -> Self {
        AccessControl((priority.0 << 5) | 0b0001_0000 | reservation.0)
    }

    /// Reconstructs from the raw wire byte.
    #[must_use]
    pub fn from_byte(byte: u8) -> Self {
        AccessControl(byte)
    }

    /// The raw wire byte.
    #[must_use]
    pub fn to_byte(self) -> u8 {
        self.0
    }

    /// The service priority field.
    #[must_use]
    pub fn priority(self) -> Priority {
        Priority(self.0 >> 5)
    }

    /// The reservation field.
    #[must_use]
    pub fn reservation(self) -> Priority {
        Priority(self.0 & 0b0000_0111)
    }

    /// `true` if the token bit marks this as a free token.
    #[must_use]
    pub fn is_token(self) -> bool {
        self.0 & 0b0001_0000 == 0
    }

    /// The monitor bit.
    #[must_use]
    pub fn monitor(self) -> bool {
        self.0 & 0b0000_1000 != 0
    }

    /// Sets the monitor bit (done by the active monitor as frames pass).
    pub fn set_monitor(&mut self, on: bool) {
        if on {
            self.0 |= 0b0000_1000;
        } else {
            self.0 &= !0b0000_1000;
        }
    }

    /// Writes `bid` into the reservation field if it exceeds the current
    /// reservation — exactly the bidding rule of the protocol (§4.1 of the
    /// paper). Returns whether the field changed.
    pub fn bid(&mut self, bid: Priority) -> bool {
        if bid > self.reservation() {
            self.0 = (self.0 & 0b1111_1000) | bid.0;
            true
        } else {
            false
        }
    }
}

/// A free token: `SD AC ED`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Token {
    ac: AccessControl,
}

impl Token {
    /// A free token at the given priority.
    #[must_use]
    pub fn new(priority: Priority) -> Self {
        Token {
            ac: AccessControl::token(priority),
        }
    }

    /// The token's access-control byte.
    #[must_use]
    pub fn access_control(&self) -> AccessControl {
        self.ac
    }

    /// Encodes to the 3-octet wire form.
    #[must_use]
    pub fn encode(&self) -> [u8; 3] {
        [SD, self.ac.to_byte(), ED]
    }

    /// Decodes a token from its wire form.
    ///
    /// # Errors
    ///
    /// [`FrameError::TooShort`], [`FrameError::BadDelimiter`], or
    /// [`FrameError::WrongKind`] if the AC byte marks a data frame.
    pub fn decode(bytes: &[u8]) -> Result<Self, FrameError> {
        if bytes.len() < 3 {
            return Err(FrameError::TooShort {
                got: bytes.len(),
                need: 3,
            });
        }
        if bytes[0] != SD {
            return Err(FrameError::BadDelimiter {
                field: "SD",
                found: bytes[0],
            });
        }
        if bytes[2] != ED {
            return Err(FrameError::BadDelimiter {
                field: "ED",
                found: bytes[2],
            });
        }
        let ac = AccessControl::from_byte(bytes[1]);
        if !ac.is_token() {
            return Err(FrameError::WrongKind);
        }
        Ok(Token { ac })
    }
}

/// An 802.5 data frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DataFrame {
    ac: AccessControl,
    frame_control: u8,
    destination: [u8; 6],
    source: [u8; 6],
    payload: Vec<u8>,
    frame_status: u8,
}

impl DataFrame {
    /// Builds a data frame (LLC frame-control, clear frame status).
    ///
    /// The token bit of `ac` is forced to "frame".
    #[must_use]
    pub fn new(ac: AccessControl, destination: [u8; 6], source: [u8; 6], payload: Vec<u8>) -> Self {
        DataFrame {
            ac: AccessControl::from_byte(ac.to_byte() | 0b0001_0000),
            frame_control: 0b0100_0000, // LLC frame
            destination,
            source,
            payload,
            frame_status: 0,
        }
    }

    /// The access-control byte (priority + reservation).
    #[must_use]
    pub fn access_control(&self) -> AccessControl {
        self.ac
    }

    /// Mutable access to the AC byte, for reservation bidding en route.
    pub fn access_control_mut(&mut self) -> &mut AccessControl {
        &mut self.ac
    }

    /// Destination MAC address.
    #[must_use]
    pub fn destination(&self) -> [u8; 6] {
        self.destination
    }

    /// Source MAC address.
    #[must_use]
    pub fn source(&self) -> [u8; 6] {
        self.source
    }

    /// The information field.
    #[must_use]
    pub fn payload(&self) -> &[u8] {
        &self.payload
    }

    /// Total length on the wire in bits (framing overhead + payload).
    #[must_use]
    pub fn wire_bits(&self) -> u64 {
        OVERHEAD_BITS + self.payload.len() as u64 * 8
    }

    /// Encodes the frame, computing the FCS over FC through INFO (the
    /// AC/SD/ED/FS fields are excluded as in the standard, since AC and FS
    /// legitimately mutate en route).
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(21 + self.payload.len());
        out.push(SD);
        out.push(self.ac.to_byte());
        out.push(self.frame_control);
        out.extend_from_slice(&self.destination);
        out.extend_from_slice(&self.source);
        out.extend_from_slice(&self.payload);
        let fcs = crc32(&out[2..]);
        out.extend_from_slice(&fcs.to_be_bytes());
        out.push(ED);
        out.push(self.frame_status);
        out
    }

    /// Decodes and validates a data frame.
    ///
    /// # Errors
    ///
    /// Any [`FrameError`]: short buffer, bad delimiters, a token where a
    /// frame was expected, or an FCS mismatch (bit corruption).
    pub fn decode(bytes: &[u8]) -> Result<Self, FrameError> {
        const MIN: usize = 21;
        if bytes.len() < MIN {
            return Err(FrameError::TooShort {
                got: bytes.len(),
                need: MIN,
            });
        }
        if bytes[0] != SD {
            return Err(FrameError::BadDelimiter {
                field: "SD",
                found: bytes[0],
            });
        }
        let ed_pos = bytes.len() - 2;
        if bytes[ed_pos] != ED {
            return Err(FrameError::BadDelimiter {
                field: "ED",
                found: bytes[ed_pos],
            });
        }
        let ac = AccessControl::from_byte(bytes[1]);
        if ac.is_token() {
            return Err(FrameError::WrongKind);
        }
        let fcs_pos = ed_pos - 4;
        let carried = u32::from_be_bytes(bytes[fcs_pos..ed_pos].try_into().expect("4 bytes"));
        let computed = crc32(&bytes[2..fcs_pos]);
        if carried != computed {
            return Err(FrameError::BadChecksum { computed, carried });
        }
        let frame_control = bytes[2];
        let destination = bytes[3..9].try_into().expect("6 bytes");
        let source = bytes[9..15].try_into().expect("6 bytes");
        let payload = bytes[15..fcs_pos].to_vec();
        Ok(DataFrame {
            ac,
            frame_control,
            destination,
            source,
            payload,
            frame_status: bytes[bytes.len() - 1],
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn priority_bounds() {
        assert_eq!(Priority::new(7), Some(Priority::HIGHEST));
        assert_eq!(Priority::new(0), Some(Priority::LOWEST));
        assert!(Priority::new(8).is_none());
        assert!(Priority::new(3).unwrap() > Priority::new(2).unwrap());
        assert_eq!(Priority::new(4).unwrap().to_string(), "P4");
    }

    #[test]
    fn access_control_fields() {
        let ac = AccessControl::frame(Priority::new(6).unwrap(), Priority::new(1).unwrap());
        assert_eq!(ac.priority().value(), 6);
        assert_eq!(ac.reservation().value(), 1);
        assert!(!ac.is_token());
        assert!(!ac.monitor());
        let mut ac = ac;
        ac.set_monitor(true);
        assert!(ac.monitor());
        ac.set_monitor(false);
        assert!(!ac.monitor());
        // Field isolation: priority unharmed by monitor/reservation edits.
        assert_eq!(ac.priority().value(), 6);
    }

    #[test]
    fn reservation_bidding_is_monotone() {
        let mut ac = AccessControl::token(Priority::new(0).unwrap());
        assert!(ac.bid(Priority::new(2).unwrap()));
        assert!(!ac.bid(Priority::new(2).unwrap())); // equal: no change
        assert!(!ac.bid(Priority::new(1).unwrap())); // lower: no change
        assert!(ac.bid(Priority::new(7).unwrap()));
        assert_eq!(ac.reservation(), Priority::HIGHEST);
    }

    #[test]
    fn token_roundtrip_and_length() {
        let t = Token::new(Priority::new(5).unwrap());
        let wire = t.encode();
        assert_eq!(wire.len() as u64 * 8, TOKEN_BITS);
        let back = Token::decode(&wire).unwrap();
        assert_eq!(back, t);
        assert_eq!(back.access_control().priority().value(), 5);
    }

    #[test]
    fn token_decode_errors() {
        assert!(matches!(
            Token::decode(&[SD, 0]),
            Err(FrameError::TooShort { .. })
        ));
        assert!(matches!(
            Token::decode(&[0xFF, 0, ED]),
            Err(FrameError::BadDelimiter { field: "SD", .. })
        ));
        assert!(matches!(
            Token::decode(&[SD, 0, 0xFF]),
            Err(FrameError::BadDelimiter { field: "ED", .. })
        ));
        // A data frame's AC byte is rejected by the token decoder.
        let ac = AccessControl::frame(Priority::LOWEST, Priority::LOWEST);
        assert_eq!(
            Token::decode(&[SD, ac.to_byte(), ED]),
            Err(FrameError::WrongKind)
        );
    }

    #[test]
    fn data_frame_roundtrip() {
        let ac = AccessControl::frame(Priority::new(4).unwrap(), Priority::new(0).unwrap());
        let f = DataFrame::new(ac, [1; 6], [2; 6], vec![9, 8, 7, 6, 5]);
        let wire = f.encode();
        assert_eq!(wire.len(), 21 + 5);
        assert_eq!(f.wire_bits(), OVERHEAD_BITS + 40);
        let back = DataFrame::decode(&wire).unwrap();
        assert_eq!(back, f);
        assert_eq!(back.destination(), [1; 6]);
        assert_eq!(back.source(), [2; 6]);
    }

    #[test]
    fn empty_payload_frame() {
        let ac = AccessControl::frame(Priority::LOWEST, Priority::LOWEST);
        let f = DataFrame::new(ac, [0; 6], [0; 6], vec![]);
        let wire = f.encode();
        assert_eq!(wire.len(), 21);
        assert_eq!(DataFrame::decode(&wire).unwrap().payload(), &[] as &[u8]);
    }

    #[test]
    fn corruption_is_detected() {
        let ac = AccessControl::frame(Priority::new(3).unwrap(), Priority::LOWEST);
        let f = DataFrame::new(ac, [1; 6], [2; 6], b"payload".to_vec());
        let mut wire = f.encode();
        // Flip a payload bit.
        wire[16] ^= 0x01;
        assert!(matches!(
            DataFrame::decode(&wire),
            Err(FrameError::BadChecksum { .. })
        ));
    }

    #[test]
    fn ac_mutation_en_route_does_not_break_fcs() {
        // The FCS excludes the AC byte precisely so reservation bids can be
        // written while the frame circulates.
        let ac = AccessControl::frame(Priority::new(3).unwrap(), Priority::LOWEST);
        let f = DataFrame::new(ac, [1; 6], [2; 6], b"x".to_vec());
        let mut wire = f.encode();
        let mut en_route = AccessControl::from_byte(wire[1]);
        en_route.bid(Priority::new(6).unwrap());
        wire[1] = en_route.to_byte();
        let back = DataFrame::decode(&wire).unwrap();
        assert_eq!(back.access_control().reservation().value(), 6);
    }

    #[test]
    fn decode_rejects_token_as_frame() {
        let token_ac = AccessControl::token(Priority::LOWEST);
        let mut wire = DataFrame::new(
            AccessControl::frame(Priority::LOWEST, Priority::LOWEST),
            [0; 6],
            [0; 6],
            vec![1, 2, 3],
        )
        .encode();
        wire[1] = token_ac.to_byte();
        assert_eq!(DataFrame::decode(&wire), Err(FrameError::WrongKind));
    }
}
