//! Server observability: request/outcome counters, per-command latency
//! histograms, and per-stage request timing.
//!
//! Latencies reuse [`ringrt_des::stats::DurationHistogram`] — the same
//! log₂-bucketed structure the simulator uses for response times — so the
//! `STATS` quantiles carry the identical "upper edge of the bucket"
//! semantics documented there, and the `METRICS` Prometheus exposition
//! reuses the exact same bucket edges as its `le` labels. Counters are
//! lock-free atomics; each histogram sits behind its own mutex, touched
//! once per completed request (or stage).
//!
//! `queue_peak` is a **windowed** high-water mark: it tracks the deepest
//! the admission queue has been since the last `STATS RESET` (or server
//! start), not over the process lifetime, so load experiments can take
//! clean per-window deltas.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Duration;

use ringrt_des::stats::DurationHistogram;
use ringrt_obs::prom::PromWriter;
use ringrt_obs::{HighWater, ShardedCounter};
use ringrt_units::SimDuration;

use crate::protocol::CommandKind;

/// Converts a wall-clock duration to the simulator's picosecond duration,
/// saturating at the (≈213-day) representable maximum.
#[must_use]
pub fn sim_duration(d: Duration) -> SimDuration {
    let ps = d.as_nanos().saturating_mul(1000);
    SimDuration::from_picos(u64::try_from(ps).unwrap_or(u64::MAX))
}

/// One command's latency record.
#[derive(Debug, Default)]
struct CommandStats {
    histogram: Mutex<DurationHistogram>,
}

/// One fast-path hit span is sampled per this many hits (per counter
/// shard): enough to keep hits visible in `TRACE` output while the
/// recorder's per-event cost disappears into the noise (<0.5% instead
/// of the ~2% a span per hit would cost on a ~2 µs hit).
pub const HIT_SPAN_SAMPLE: u64 = 64;

/// A request-lifecycle stage timed by the server.
///
/// Every request passes through `parse → cache → queue_wait → execute →
/// respond`; cache hits skip the queue and execute stages — and skip
/// per-stage recording entirely: the hit fast path aggregates into
/// [`Metrics::note_hit`]'s sharded counters instead. Each stage has
/// its own latency histogram so the `METRICS` exposition (and the `TRACE`
/// flight recorder, which uses the same stage names as span names) can
/// attribute end-to-end latency to a pipeline phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stage {
    /// Request-line parsing (`parse_request`).
    Parse,
    /// Result-cache probe (hit or miss).
    Cache,
    /// Time spent queued before a worker claimed the job.
    QueueWait,
    /// Worker-side engine execution.
    Execute,
    /// Serializing and writing the response line.
    Respond,
}

impl Stage {
    /// Every stage, in pipeline order.
    pub const ALL: [Stage; 5] = [
        Stage::Parse,
        Stage::Cache,
        Stage::QueueWait,
        Stage::Execute,
        Stage::Respond,
    ];

    /// Stable lowercase token (metric label / span name).
    #[must_use]
    pub fn token(self) -> &'static str {
        match self {
            Stage::Parse => "parse",
            Stage::Cache => "cache",
            Stage::QueueWait => "queue_wait",
            Stage::Execute => "execute",
            Stage::Respond => "respond",
        }
    }

    fn index(self) -> usize {
        match self {
            Stage::Parse => 0,
            Stage::Cache => 1,
            Stage::QueueWait => 2,
            Stage::Execute => 3,
            Stage::Respond => 4,
        }
    }
}

/// One worker thread's utilization record.
#[derive(Debug, Default)]
struct WorkerStats {
    /// Jobs this worker completed.
    jobs: AtomicU64,
    /// Microseconds this worker spent executing jobs.
    busy_us: AtomicU64,
}

/// Connection front-end counters shared by both front ends (the blocking
/// thread-per-connection path and the epoll event loops).
///
/// `open` is a **gauge** — it tracks present state (currently connected
/// clients) and therefore survives `STATS RESET`, unlike the accumulated
/// counters around it.
#[derive(Debug, Default)]
pub struct ConnCounters {
    /// Connections currently open (gauge; not reset).
    pub open: AtomicU64,
    /// Connections accepted since the last reset.
    pub accepted: AtomicU64,
    /// Connections shed at accept time by the `max_conns` guard.
    pub accept_shed: AtomicU64,
    /// Event-loop poll returns (wakeups), across all loops.
    pub loop_wakeups: AtomicU64,
    /// Readiness events delivered across all wakeups; divide by
    /// `loop_wakeups` for the events-per-wakeup batching factor.
    pub loop_ready_events: AtomicU64,
    /// Connections closed for exceeding the idle timeout.
    pub idle_closed: AtomicU64,
    /// Connections closed for stalling mid-line past the read deadline
    /// (the slow-loris guard).
    pub read_deadline_closed: AtomicU64,
    /// Request lines rejected for exceeding the line-length cap.
    pub oversized_rejected: AtomicU64,
}

/// All server counters and histograms.
#[derive(Debug)]
pub struct Metrics {
    /// Request lines received (including malformed ones).
    pub requests: AtomicU64,
    /// `OK` responses sent.
    pub ok: AtomicU64,
    /// `ERR` responses sent.
    pub errors: AtomicU64,
    /// `BUSY` responses sent (queue full, load shed).
    pub busy: AtomicU64,
    /// `READONLY` redirects sent (mutation against a follower).
    pub readonly: AtomicU64,
    /// Requests answered `ERR` because they overstayed their queue deadline.
    pub deadline_expired: AtomicU64,
    /// Deepest the admission queue has been since the last `STATS RESET`
    /// (windowed high-water mark).
    pub queue_peak: HighWater,
    /// Accept-path and event-loop counters.
    pub conns: ConnCounters,
    /// Cache hits answered on the zero-span fast path (pre-aggregated
    /// sharded counter; see [`Metrics::note_hit`]).
    hit_fast: ShardedCounter,
    /// Cumulative fast-path hit latency (parse→reply), microseconds.
    hit_fast_us: ShardedCounter,
    per_command: [CommandStats; CommandKind::ALL.len()],
    per_stage: [CommandStats; Stage::ALL.len()],
    per_worker: Vec<WorkerStats>,
}

impl Metrics {
    /// Creates zeroed metrics with no per-worker slots (unit tests; real
    /// servers use [`Metrics::with_workers`]).
    #[must_use]
    pub fn new() -> Self {
        Metrics::with_workers(0)
    }

    /// Creates zeroed metrics with one utilization slot per worker thread.
    #[must_use]
    pub fn with_workers(workers: usize) -> Self {
        Metrics {
            requests: AtomicU64::new(0),
            ok: AtomicU64::new(0),
            errors: AtomicU64::new(0),
            busy: AtomicU64::new(0),
            readonly: AtomicU64::new(0),
            deadline_expired: AtomicU64::new(0),
            queue_peak: HighWater::new(),
            conns: ConnCounters::default(),
            hit_fast: ShardedCounter::new(),
            hit_fast_us: ShardedCounter::new(),
            per_command: Default::default(),
            per_stage: Default::default(),
            per_worker: (0..workers).map(|_| WorkerStats::default()).collect(),
        }
    }

    /// Raises the queue high-water mark to `depth` if it is deeper than
    /// anything seen in the current measurement window.
    pub fn note_queue_depth(&self, depth: usize) {
        self.queue_peak.observe(depth as u64);
    }

    /// Records one zero-span fast-path cache hit: two relaxed sharded
    /// adds (count and parse→reply microseconds), no clock reads, no
    /// locks. Returns `true` roughly once per [`HIT_SPAN_SAMPLE`] hits
    /// per counter shard — the caller's cue to emit the *one* sampled
    /// `request`/`hit` span that keeps hits visible in `TRACE` output.
    pub fn note_hit(&self, elapsed: Duration) -> bool {
        self.hit_fast_us
            .add(u64::try_from(elapsed.as_micros()).unwrap_or(u64::MAX));
        self.hit_fast.add(1).is_multiple_of(HIT_SPAN_SAMPLE)
    }

    /// Fast-path hit totals: `(hits, cumulative_micros)`, each summed
    /// across counter shards in one pass.
    #[must_use]
    pub fn hit_fast_totals(&self) -> (u64, u64) {
        (self.hit_fast.sum(), self.hit_fast_us.sum())
    }

    /// Records one stage's elapsed time in that stage's histogram.
    pub fn record_stage(&self, stage: Stage, elapsed: Duration) {
        let mut h = self.per_stage[stage.index()]
            .histogram
            .lock()
            .expect("metrics histogram poisoned");
        h.push(sim_duration(elapsed));
    }

    /// Zeroes every counter and clears every histogram, starting a fresh
    /// measurement window.
    ///
    /// This is the `STATS RESET` implementation: request/outcome counters,
    /// per-command and per-stage latency histograms, per-worker job and
    /// busy-time tallies, and the `queue_peak` high-water mark all return
    /// to zero. Gauges owned by other components (live queue depth,
    /// inflight connections, `exec_threads`, cache occupancy) are *not*
    /// touched — they describe present state, not accumulated history.
    /// The caller should immediately re-seed `queue_peak` with the current
    /// queue depth via [`Metrics::note_queue_depth`] so the new window's
    /// peak never reads below the live depth.
    pub fn reset(&self) {
        for c in [
            &self.requests,
            &self.ok,
            &self.errors,
            &self.busy,
            &self.readonly,
            &self.deadline_expired,
        ] {
            c.store(0, Ordering::Relaxed);
        }
        // Every accumulated connection counter restarts; `conns.open` is a
        // gauge describing present state and is deliberately left alone.
        for c in [
            &self.conns.accepted,
            &self.conns.accept_shed,
            &self.conns.loop_wakeups,
            &self.conns.loop_ready_events,
            &self.conns.idle_closed,
            &self.conns.read_deadline_closed,
            &self.conns.oversized_rejected,
        ] {
            c.store(0, Ordering::Relaxed);
        }
        self.queue_peak.reset(0);
        self.hit_fast.reset();
        self.hit_fast_us.reset();
        for stats in self.per_command.iter().chain(self.per_stage.iter()) {
            stats
                .histogram
                .lock()
                .expect("metrics histogram poisoned")
                .clear();
        }
        for w in &self.per_worker {
            w.jobs.store(0, Ordering::Relaxed);
            w.busy_us.store(0, Ordering::Relaxed);
        }
    }

    /// Credits worker `index` with one completed job of the given busy time.
    pub fn record_worker(&self, index: usize, busy: Duration) {
        if let Some(w) = self.per_worker.get(index) {
            w.jobs.fetch_add(1, Ordering::Relaxed);
            w.busy_us
                .fetch_add(busy.as_micros() as u64, Ordering::Relaxed);
        }
    }

    /// Appends `queue_peak`, `worker_jobs`, and `worker_busy_us` fields to a
    /// `STATS` response body. The per-worker lists are comma-joined in
    /// worker order so a skewed pool (one hot worker, the rest idle) is
    /// visible at a glance.
    ///
    /// Every worker's `(jobs, busy_us)` pair is sampled in **one pass**
    /// before any formatting, so the two rendered lists describe the
    /// same instant. (The old two-sweep rendering could show a worker's
    /// busy time from milliseconds after its job count — a torn gauge
    /// under load.)
    pub fn render_workers(&self, out: &mut String) {
        use std::fmt::Write as _;
        let _ = write!(out, " queue_peak={}", self.queue_peak.peak());
        if self.per_worker.is_empty() {
            return;
        }
        let snapshot: Vec<(u64, u64)> = self
            .per_worker
            .iter()
            .map(|w| {
                (
                    w.jobs.load(Ordering::Relaxed),
                    w.busy_us.load(Ordering::Relaxed),
                )
            })
            .collect();
        let join = |f: &dyn Fn(&(u64, u64)) -> u64| {
            snapshot
                .iter()
                .map(|pair| f(pair).to_string())
                .collect::<Vec<_>>()
                .join(",")
        };
        let _ = write!(
            out,
            " worker_jobs={} worker_busy_us={}",
            join(&|&(jobs, _)| jobs),
            join(&|&(_, busy_us)| busy_us),
        );
    }

    /// Appends the connection front-end fields to a `STATS` response body.
    pub fn render_conns(&self, out: &mut String) {
        use std::fmt::Write as _;
        let c = &self.conns;
        let _ = write!(
            out,
            " connections_open={} connections_accepted={} accept_shed={} loop_wakeups={} \
             loop_ready_events={} idle_closed={} read_deadline_closed={} oversized_rejected={}",
            c.open.load(Ordering::Relaxed),
            c.accepted.load(Ordering::Relaxed),
            c.accept_shed.load(Ordering::Relaxed),
            c.loop_wakeups.load(Ordering::Relaxed),
            c.loop_ready_events.load(Ordering::Relaxed),
            c.idle_closed.load(Ordering::Relaxed),
            c.read_deadline_closed.load(Ordering::Relaxed),
            c.oversized_rejected.load(Ordering::Relaxed),
        );
    }

    /// Records a completed request's end-to-end latency.
    pub fn record_latency(&self, command: CommandKind, elapsed: Duration) {
        let mut h = self.per_command[command.index()]
            .histogram
            .lock()
            .expect("metrics histogram poisoned");
        h.push(sim_duration(elapsed));
    }

    /// Classifies a response line into the ok/err/busy/readonly counters.
    pub fn count_response(&self, response: &str) {
        let counter = if response.starts_with("OK") {
            &self.ok
        } else if response.starts_with("BUSY") {
            &self.busy
        } else if response.starts_with("READONLY") {
            &self.readonly
        } else {
            &self.errors
        };
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// Appends `<cmd>_count / <cmd>_p50_us / <cmd>_p99_us` fields for every
    /// command to a `STATS` response body.
    pub fn render_latencies(&self, out: &mut String) {
        use std::fmt::Write as _;
        for cmd in CommandKind::ALL {
            let h = self.per_command[cmd.index()]
                .histogram
                .lock()
                .expect("metrics histogram poisoned");
            let name = cmd.token();
            let _ = write!(out, " {name}_count={}", h.count());
            for (label, q) in [("p50", 0.5), ("p99", 0.99)] {
                match h.quantile(q) {
                    Some(d) => {
                        let us = d.as_picos() as f64 / 1e6;
                        let _ = write!(out, " {name}_{label}_us={us:.1}");
                    }
                    None => {
                        let _ = write!(out, " {name}_{label}_us=nan");
                    }
                }
            }
        }
    }

    /// Emits every metric this struct owns into a Prometheus text
    /// exposition writer.
    ///
    /// Counters get a `_total` suffix; the windowed `queue_peak` is a
    /// gauge (it can fall back to zero on `STATS RESET`). Latency
    /// histograms are labelled by command or stage and reuse the log₂
    /// bucket edges of [`ringrt_des::stats::DurationHistogram`], expressed
    /// in seconds. The caller (the server's `METRICS` handler) appends its
    /// own gauges — live queue depth, cache occupancy, exec-pool width —
    /// around this call.
    pub fn render_prometheus(&self, w: &mut PromWriter) {
        let c = |a: &AtomicU64| a.load(Ordering::Relaxed) as f64;
        w.counter(
            "ringrt_requests_total",
            "Request lines received, including malformed ones.",
            &[],
            c(&self.requests),
        );
        for (status, counter) in [
            ("ok", &self.ok),
            ("err", &self.errors),
            ("busy", &self.busy),
            ("readonly", &self.readonly),
        ] {
            w.counter(
                "ringrt_responses_total",
                "Responses sent, by status line.",
                &[("status", status)],
                c(counter),
            );
        }
        w.counter(
            "ringrt_deadline_expired_total",
            "Requests answered ERR because they overstayed their queue deadline.",
            &[],
            c(&self.deadline_expired),
        );
        w.gauge(
            "ringrt_queue_peak",
            "Deepest the admission queue has been since the last STATS RESET.",
            &[],
            self.queue_peak.peak() as f64,
        );
        w.gauge(
            "ringrt_connections_open",
            "Client connections currently open across both front ends.",
            &[],
            c(&self.conns.open),
        );
        w.counter(
            "ringrt_connections_accepted_total",
            "Client connections accepted.",
            &[],
            c(&self.conns.accepted),
        );
        w.counter(
            "ringrt_accept_shed_total",
            "Connections shed at accept time by the max_conns guard.",
            &[],
            c(&self.conns.accept_shed),
        );
        w.counter(
            "ringrt_loop_wakeups_total",
            "Event-loop poll returns across all loops.",
            &[],
            c(&self.conns.loop_wakeups),
        );
        w.counter(
            "ringrt_loop_ready_events_total",
            "Readiness events delivered across all event-loop wakeups.",
            &[],
            c(&self.conns.loop_ready_events),
        );
        for (reason, counter) in [
            ("idle", &self.conns.idle_closed),
            ("read_deadline", &self.conns.read_deadline_closed),
        ] {
            w.counter(
                "ringrt_connections_timed_out_total",
                "Connections closed by a server-side timeout, by reason.",
                &[("reason", reason)],
                c(counter),
            );
        }
        w.counter(
            "ringrt_oversized_lines_total",
            "Request lines rejected for exceeding the line-length cap.",
            &[],
            c(&self.conns.oversized_rejected),
        );
        let (hits, hit_us) = self.hit_fast_totals();
        w.counter(
            "ringrt_hit_fastpath_total",
            "Cache hits answered on the zero-span fast path.",
            &[],
            hits as f64,
        );
        w.counter(
            "ringrt_hit_fastpath_seconds_total",
            "Cumulative parse-to-reply time of fast-path cache hits.",
            &[],
            hit_us as f64 / 1e6,
        );
        for (i, worker) in self.per_worker.iter().enumerate() {
            let id = i.to_string();
            w.counter(
                "ringrt_worker_jobs_total",
                "Jobs completed, per worker thread.",
                &[("worker", &id)],
                c(&worker.jobs),
            );
            w.counter(
                "ringrt_worker_busy_seconds_total",
                "Time spent executing jobs, per worker thread.",
                &[("worker", &id)],
                c(&worker.busy_us) / 1e6,
            );
        }
        for cmd in CommandKind::ALL {
            let h = self.per_command[cmd.index()]
                .histogram
                .lock()
                .expect("metrics histogram poisoned");
            w.histogram(
                "ringrt_request_latency_seconds",
                "End-to-end request latency, by command.",
                &[("command", cmd.token())],
                &h,
            );
        }
        for stage in Stage::ALL {
            let h = self.per_stage[stage.index()]
                .histogram
                .lock()
                .expect("metrics histogram poisoned");
            w.histogram(
                "ringrt_stage_latency_seconds",
                "Per-stage request latency across the service pipeline.",
                &[("stage", stage.token())],
                &h,
            );
        }
    }
}

impl Default for Metrics {
    fn default() -> Self {
        Metrics::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duration_conversion() {
        assert_eq!(sim_duration(Duration::from_micros(3)).as_picos(), 3_000_000);
        assert_eq!(sim_duration(Duration::ZERO).as_picos(), 0);
        // Far beyond the picosecond range: saturates instead of panicking.
        assert_eq!(
            sim_duration(Duration::from_secs(1 << 40)).as_picos(),
            u64::MAX
        );
    }

    #[test]
    fn response_classification() {
        let m = Metrics::new();
        m.count_response("OK cmd=ping");
        m.count_response("ERR nope");
        m.count_response("BUSY queue_capacity=4");
        m.count_response("READONLY cmd=admit primary=127.0.0.1:7777 epoch=2");
        m.count_response("garbage");
        assert_eq!(m.ok.load(Ordering::Relaxed), 1);
        assert_eq!(m.errors.load(Ordering::Relaxed), 2);
        assert_eq!(m.busy.load(Ordering::Relaxed), 1);
        assert_eq!(m.readonly.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn worker_fields_render() {
        let m = Metrics::with_workers(3);
        m.note_queue_depth(2);
        m.note_queue_depth(7);
        m.note_queue_depth(4); // peak must not regress
        m.record_worker(0, Duration::from_micros(150));
        m.record_worker(0, Duration::from_micros(50));
        m.record_worker(2, Duration::from_micros(30));
        m.record_worker(9, Duration::from_micros(1)); // out of range: ignored
        let mut out = String::new();
        m.render_workers(&mut out);
        assert!(out.contains(" queue_peak=7"), "{out}");
        assert!(out.contains(" worker_jobs=2,0,1"), "{out}");
        assert!(out.contains(" worker_busy_us=200,0,30"), "{out}");
        // Workerless metrics render the peak but omit the empty lists.
        let mut bare = String::new();
        Metrics::new().render_workers(&mut bare);
        assert!(bare.contains(" queue_peak=0"), "{bare}");
        assert!(!bare.contains("worker_jobs"), "{bare}");
    }

    #[test]
    fn latency_fields_render() {
        let m = Metrics::new();
        m.record_latency(CommandKind::Check, Duration::from_micros(100));
        m.record_latency(CommandKind::Check, Duration::from_micros(200));
        let mut out = String::new();
        m.render_latencies(&mut out);
        assert!(out.contains(" check_count=2"));
        assert!(out.contains(" check_p50_us="));
        assert!(out.contains(" simulate_count=0"));
        assert!(out.contains(" simulate_p50_us=nan"));
        // p50 upper bucket edge for ~100–200 µs samples stays in range.
        let p50: f64 = out
            .split(" check_p50_us=")
            .nth(1)
            .unwrap()
            .split_whitespace()
            .next()
            .unwrap()
            .parse()
            .unwrap();
        assert!((100.0..=600.0).contains(&p50), "p50 = {p50}");
    }

    #[test]
    fn reset_zeroes_counters_histograms_and_peak() {
        let m = Metrics::with_workers(2);
        m.requests.fetch_add(5, Ordering::Relaxed);
        m.count_response("OK cmd=ping");
        m.count_response("BUSY queue_capacity=4");
        m.deadline_expired.fetch_add(1, Ordering::Relaxed);
        m.note_queue_depth(9);
        m.record_worker(1, Duration::from_micros(40));
        m.record_latency(CommandKind::Check, Duration::from_micros(100));
        m.record_stage(Stage::Parse, Duration::from_micros(3));
        m.count_response("READONLY cmd=admit primary=127.0.0.1:7777 epoch=2");
        m.reset();
        assert_eq!(m.requests.load(Ordering::Relaxed), 0);
        assert_eq!(m.ok.load(Ordering::Relaxed), 0);
        assert_eq!(m.busy.load(Ordering::Relaxed), 0);
        assert_eq!(m.readonly.load(Ordering::Relaxed), 0);
        assert_eq!(m.deadline_expired.load(Ordering::Relaxed), 0);
        assert_eq!(m.queue_peak.peak(), 0);
        let mut out = String::new();
        m.render_workers(&mut out);
        m.render_latencies(&mut out);
        assert!(out.contains(" queue_peak=0"), "{out}");
        assert!(out.contains(" worker_jobs=0,0"), "{out}");
        assert!(out.contains(" check_count=0"), "{out}");
        // A new window accumulates from scratch.
        m.note_queue_depth(3);
        assert_eq!(m.queue_peak.peak(), 3);
    }

    #[test]
    fn connection_counters_render_and_open_gauge_survives_reset() {
        let m = Metrics::new();
        m.conns.open.store(3, Ordering::Relaxed);
        m.conns.accepted.store(7, Ordering::Relaxed);
        m.conns.accept_shed.store(2, Ordering::Relaxed);
        m.conns.loop_wakeups.store(10, Ordering::Relaxed);
        m.conns.loop_ready_events.store(25, Ordering::Relaxed);
        let mut out = String::new();
        m.render_conns(&mut out);
        assert!(out.contains(" connections_open=3"), "{out}");
        assert!(out.contains(" connections_accepted=7"), "{out}");
        assert!(out.contains(" accept_shed=2"), "{out}");
        assert!(out.contains(" loop_wakeups=10"), "{out}");
        assert!(out.contains(" loop_ready_events=25"), "{out}");
        m.reset();
        // The gauge describes present state and survives; counters restart.
        assert_eq!(m.conns.open.load(Ordering::Relaxed), 3);
        assert_eq!(m.conns.accepted.load(Ordering::Relaxed), 0);
        assert_eq!(m.conns.accept_shed.load(Ordering::Relaxed), 0);
        assert_eq!(m.conns.loop_wakeups.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn prometheus_rendering_is_parseable_and_complete() {
        use ringrt_obs::prom::parse_exposition;
        let m = Metrics::with_workers(2);
        m.requests.fetch_add(4, Ordering::Relaxed);
        m.count_response("OK cmd=check verdict=yes");
        m.record_worker(0, Duration::from_micros(250));
        m.record_latency(CommandKind::Check, Duration::from_micros(120));
        m.record_stage(Stage::Execute, Duration::from_micros(80));
        let mut w = PromWriter::new();
        m.render_prometheus(&mut w);
        let text = w.finish();
        let samples = parse_exposition(&text).expect("exposition must parse");
        let find = |name: &str| {
            samples
                .iter()
                .filter(|s| s.name == name)
                .collect::<Vec<_>>()
        };
        assert_eq!(find("ringrt_requests_total")[0].value, 4.0);
        let responses = find("ringrt_responses_total");
        assert_eq!(responses.len(), 4, "{text}");
        assert!(responses
            .iter()
            .any(|s| s.label("status") == Some("readonly") && s.value == 0.0));
        assert!(responses
            .iter()
            .any(|s| s.label("status") == Some("ok") && s.value == 1.0));
        assert_eq!(find("ringrt_worker_jobs_total").len(), 2);
        // One histogram series per command and per stage.
        let counts = find("ringrt_request_latency_seconds_count");
        assert_eq!(counts.len(), CommandKind::ALL.len(), "{text}");
        let stage_counts = find("ringrt_stage_latency_seconds_count");
        assert_eq!(stage_counts.len(), Stage::ALL.len(), "{text}");
        assert!(stage_counts
            .iter()
            .any(|s| s.label("stage") == Some("execute") && s.value == 1.0));
    }
}
