//! End-to-end checks of the shipped scenarios: the verdicts the examples
//! narrate must hold, on both the analysis and the simulation side.

use ringrt::prelude::*;
use ringrt::workload::scenarios;

#[test]
fn avionics_needs_the_priority_driven_protocol_at_1mbps() {
    let set = scenarios::avionics_control();
    let bw = Bandwidth::from_mbps(1.0);

    let pdp = PdpAnalyzer::new(
        RingConfig::ieee_802_5(set.len(), bw),
        FrameFormat::paper_default(),
        PdpVariant::Standard,
    );
    assert!(
        pdp.is_schedulable(&set),
        "802.5 must guarantee avionics at 1 Mbps"
    );

    let ttp = TtpAnalyzer::with_defaults(RingConfig::fddi(set.len(), bw));
    assert!(
        !ttp.is_schedulable(&set),
        "FDDI at 1 Mbps must fail on the avionics set"
    );
}

#[test]
fn avionics_simulation_confirms_802_5_guarantee() {
    let set = scenarios::avionics_control();
    let ring = RingConfig::ieee_802_5(set.len(), Bandwidth::from_mbps(1.0));
    let config = SimConfig::new(ring, Seconds::new(1.5))
        .with_phasing(Phasing::Synchronized)
        .with_async_load(0.3);
    let report = PdpSimulator::new(
        &set,
        config,
        FrameFormat::paper_default(),
        PdpVariant::Standard,
    )
    .run();
    assert_eq!(report.deadline_misses(), 0, "{report}");
    assert!(report.completed() > 200, "{report}");
}

#[test]
fn backbone_needs_the_timed_token_protocol_at_100mbps() {
    let set = scenarios::space_station_backbone();
    let bw = Bandwidth::from_mbps(100.0);

    let ttp = TtpAnalyzer::with_defaults(RingConfig::fddi(set.len(), bw));
    let report = ttp.analyze(&set);
    assert!(
        report.schedulable,
        "FDDI must guarantee the backbone:\n{report}"
    );

    let pdp = PdpAnalyzer::new(
        RingConfig::ieee_802_5(set.len(), bw),
        FrameFormat::paper_default(),
        PdpVariant::Standard,
    );
    assert!(
        !pdp.is_schedulable(&set),
        "standard 802.5 must fail at 100 Mbps on the backbone set"
    );
}

#[test]
fn backbone_simulation_confirms_fddi_guarantee_and_802_5_failure() {
    let set = scenarios::space_station_backbone();
    let bw = Bandwidth::from_mbps(100.0);
    let horizon = Seconds::new(1.5);

    let ring = RingConfig::fddi(set.len(), bw);
    let fddi =
        TtpSimulator::from_analysis(&set, SimConfig::new(ring, horizon).with_async_load(0.25))
            .expect("schedulable set is feasible")
            .run();
    assert_eq!(fddi.deadline_misses(), 0, "{fddi}");

    let ring = RingConfig::ieee_802_5(set.len(), bw);
    let p8025 = PdpSimulator::new(
        &set,
        SimConfig::new(ring, horizon),
        FrameFormat::paper_default(),
        PdpVariant::Standard,
    )
    .run();
    assert!(p8025.deadline_misses() > 0, "{p8025}");
}

#[test]
fn factory_cell_is_schedulable_by_both_at_crossover_bandwidth() {
    // Near the crossover (~25 Mbps) a moderate load fits under either MAC —
    // the protocols differ in headroom, not verdict.
    let set = scenarios::factory_cell();
    let bw = Bandwidth::from_mbps(25.0);
    let pdp = PdpAnalyzer::new(
        RingConfig::ieee_802_5(set.len(), bw),
        FrameFormat::paper_default(),
        PdpVariant::Modified,
    );
    let ttp = TtpAnalyzer::with_defaults(RingConfig::fddi(set.len(), bw));
    assert!(pdp.is_schedulable(&set));
    assert!(ttp.is_schedulable(&set));
}

#[test]
fn scenario_reports_expose_consistent_detail() {
    let set = scenarios::space_station_backbone();
    let ttp = TtpAnalyzer::with_defaults(RingConfig::fddi(set.len(), Bandwidth::from_mbps(100.0)));
    let report = ttp.analyze(&set);
    assert_eq!(report.per_stream.len(), set.len());
    // Every stream's guaranteed visit count matches ⌊P_i/TTRT⌋.
    for (s, sr) in set.iter().zip(&report.per_stream) {
        let q = (s.period() / report.ttrt).floor() as u64;
        assert!(sr.visits == q || sr.visits == q + 1); // ± float tolerance at exact multiples
        assert!(sr.allocation > Seconds::ZERO);
        assert!(sr.deadline_met);
    }
    // Protocol constraint is reflected in the report arithmetic.
    assert!(report.total_allocated <= report.capacity);
    assert!(report.allocation_ratio() <= 1.0);
}
