//! Synchronous message streams and message sets (paper §3.2).

use core::fmt;

use ringrt_units::{Bandwidth, Bits, Seconds};

use crate::ModelError;

/// Identifier of a synchronous stream, which is also the index of the ring
/// station that sources it (the paper assumes exactly one stream per node).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct StreamId(pub usize);

impl fmt::Display for StreamId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "S{}", self.0 + 1)
    }
}

/// One periodic synchronous message stream `S_i` (paper §3.2).
///
/// Messages arrive every `period` seconds; each message carries
/// `length_bits` payload bits and must finish transmission by its relative
/// deadline — the end of the period in the paper's model (the default), or
/// an explicit earlier deadline set with [`SyncStream::with_relative_deadline`]
/// (the constrained-deadline extension, `D_i ≤ P_i`).
///
/// # Examples
///
/// ```
/// use ringrt_model::SyncStream;
/// use ringrt_units::{Bandwidth, Bits, Seconds};
///
/// let s = SyncStream::new(Seconds::from_millis(100.0), Bits::new(51_200));
/// // C_i = C_i^b / BW (paper eq. 2)
/// let c = s.transmission_time(Bandwidth::from_mbps(10.0));
/// assert!((c.as_millis() - 5.12).abs() < 1e-9);
/// assert!((s.utilization(Bandwidth::from_mbps(10.0)) - 0.0512).abs() < 1e-9);
/// // Paper model: deadline = period.
/// assert_eq!(s.relative_deadline(), s.period());
/// // Constrained-deadline extension:
/// let tight = s.with_relative_deadline(Seconds::from_millis(40.0));
/// assert_eq!(tight.relative_deadline(), Seconds::from_millis(40.0));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SyncStream {
    period: Seconds,
    length_bits: Bits,
    /// Explicit relative deadline; `None` means "end of period".
    deadline: Option<Seconds>,
}

impl SyncStream {
    /// Creates a stream with the given period `P_i` and payload length
    /// `C_i^b` in bits.
    ///
    /// # Panics
    ///
    /// Panics if the period is not finite and strictly positive, or the
    /// length is zero. Use [`SyncStream::try_new`] for fallible
    /// construction.
    #[must_use]
    pub fn new(period: Seconds, length_bits: Bits) -> Self {
        Self::try_new(period, length_bits).expect("invalid synchronous stream")
    }

    /// Fallible constructor.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidPeriod`] for a non-positive or
    /// non-finite period and [`ModelError::EmptyMessage`] for a zero-length
    /// message (index 0 is reported; set-level validation rewrites it).
    pub fn try_new(period: Seconds, length_bits: Bits) -> Result<Self, ModelError> {
        if !(period.is_finite() && period > Seconds::ZERO) {
            return Err(ModelError::InvalidPeriod {
                index: 0,
                period_secs: period.as_secs_f64(),
            });
        }
        if length_bits.is_zero() {
            return Err(ModelError::EmptyMessage { index: 0 });
        }
        Ok(SyncStream {
            period,
            length_bits,
            deadline: None,
        })
    }

    /// Returns a copy with an explicit relative deadline `D_i`
    /// (constrained-deadline extension).
    ///
    /// # Panics
    ///
    /// Panics unless `0 < deadline ≤ period`.
    #[must_use]
    pub fn with_relative_deadline(&self, deadline: Seconds) -> SyncStream {
        assert!(
            deadline > Seconds::ZERO && deadline <= self.period,
            "relative deadline must satisfy 0 < D ≤ P (D = {deadline}, P = {})",
            self.period
        );
        SyncStream {
            deadline: Some(deadline),
            ..*self
        }
    }

    /// The relative deadline `D_i`: the explicit one if set, otherwise the
    /// period (the paper's model).
    #[must_use]
    pub fn relative_deadline(&self) -> Seconds {
        self.deadline.unwrap_or(self.period)
    }

    /// The period (and relative deadline) `P_i`.
    #[must_use]
    pub fn period(&self) -> Seconds {
        self.period
    }

    /// The payload length `C_i^b` in bits.
    #[must_use]
    pub fn length_bits(&self) -> Bits {
        self.length_bits
    }

    /// The raw transmission time `C_i = C_i^b / BW` (paper eq. 2), with no
    /// protocol overheads.
    #[must_use]
    pub fn transmission_time(&self, bandwidth: Bandwidth) -> Seconds {
        bandwidth.transmission_time(self.length_bits)
    }

    /// The stream's utilization `C_i / P_i` at a given bandwidth.
    #[must_use]
    pub fn utilization(&self, bandwidth: Bandwidth) -> f64 {
        self.transmission_time(bandwidth) / self.period
    }

    /// Whether this stream uses the paper's implicit deadline (= period).
    #[must_use]
    pub fn has_implicit_deadline(&self) -> bool {
        self.deadline.is_none()
    }

    /// Returns a copy with the payload length multiplied by `factor` and
    /// rounded to the nearest bit (minimum one bit).
    ///
    /// Used by the breakdown-utilization search, which scales all message
    /// lengths by a common factor to find the saturation boundary.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is negative or not finite.
    #[must_use]
    pub fn with_scaled_length(&self, factor: f64) -> SyncStream {
        assert!(
            factor.is_finite() && factor >= 0.0,
            "scale factor must be finite and non-negative, got {factor}"
        );
        let scaled = (self.length_bits.as_f64() * factor).round().max(1.0);
        SyncStream {
            length_bits: Bits::new(scaled as u64),
            ..*self
        }
    }

    /// Returns a copy with a different payload length.
    #[must_use]
    pub fn with_length(&self, length_bits: Bits) -> SyncStream {
        SyncStream {
            length_bits,
            ..*self
        }
    }
}

impl fmt::Display for SyncStream {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(P = {}, C = {})", self.period, self.length_bits)
    }
}

/// A synchronous message set `M = {S_1, …, S_n}` (paper eq. 1).
///
/// Stream `i` is sourced by ring station `i`; the set preserves the
/// station order it was built with. Use [`MessageSet::rm_order`] to obtain
/// the rate-monotonic priority permutation without disturbing station
/// placement.
///
/// # Examples
///
/// ```
/// use ringrt_model::{MessageSet, SyncStream};
/// use ringrt_units::{Bandwidth, Bits, Seconds};
///
/// let set = MessageSet::new(vec![
///     SyncStream::new(Seconds::from_millis(80.0), Bits::new(1_000)),
///     SyncStream::new(Seconds::from_millis(20.0), Bits::new(2_000)),
/// ])?;
/// assert_eq!(set.len(), 2);
/// // Shorter period first under RM:
/// assert_eq!(set.rm_order(), vec![1, 0]);
/// # Ok::<(), ringrt_model::ModelError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct MessageSet {
    streams: Vec<SyncStream>,
}

impl MessageSet {
    /// Builds a message set from streams in station order.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::EmptySet`] for an empty vector; period/length
    /// violations are reported with the offending stream index.
    pub fn new(streams: Vec<SyncStream>) -> Result<Self, ModelError> {
        if streams.is_empty() {
            return Err(ModelError::EmptySet);
        }
        for (index, s) in streams.iter().enumerate() {
            if !(s.period.is_finite() && s.period > Seconds::ZERO) {
                return Err(ModelError::InvalidPeriod {
                    index,
                    period_secs: s.period.as_secs_f64(),
                });
            }
            if s.length_bits.is_zero() {
                return Err(ModelError::EmptyMessage { index });
            }
        }
        Ok(MessageSet { streams })
    }

    /// Number of streams (= number of sourcing stations), `n`.
    #[must_use]
    pub fn len(&self) -> usize {
        self.streams.len()
    }

    /// Always `false`: construction rejects empty sets.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.streams.is_empty()
    }

    /// The stream sourced by station `id`.
    #[must_use]
    pub fn stream(&self, id: StreamId) -> &SyncStream {
        &self.streams[id.0]
    }

    /// Iterates over streams in station order.
    pub fn iter(&self) -> impl ExactSizeIterator<Item = &SyncStream> + '_ {
        self.streams.iter()
    }

    /// The streams as a slice, in station order.
    #[must_use]
    pub fn as_slice(&self) -> &[SyncStream] {
        &self.streams
    }

    /// Total utilization `U(M) = Σ C_i / P_i` (paper eq. 3).
    #[must_use]
    pub fn utilization(&self, bandwidth: Bandwidth) -> f64 {
        self.streams.iter().map(|s| s.utilization(bandwidth)).sum()
    }

    /// The shortest period `P_min` in the set.
    #[must_use]
    pub fn min_period(&self) -> Seconds {
        self.streams
            .iter()
            .map(SyncStream::period)
            .fold(Seconds::new(f64::INFINITY), Seconds::min)
    }

    /// The longest period `P_max` in the set.
    #[must_use]
    pub fn max_period(&self) -> Seconds {
        self.streams
            .iter()
            .map(SyncStream::period)
            .fold(Seconds::ZERO, Seconds::max)
    }

    /// Station indices sorted into rate-monotonic priority order (shortest
    /// period first; ties broken by station index for determinism).
    #[must_use]
    pub fn rm_order(&self) -> Vec<usize> {
        let mut order: Vec<usize> = (0..self.streams.len()).collect();
        order.sort_by(|&a, &b| {
            self.streams[a]
                .period
                .total_cmp(&self.streams[b].period)
                .then(a.cmp(&b))
        });
        order
    }

    /// Station indices sorted into deadline-monotonic priority order
    /// (shortest relative deadline first; ties by period, then station
    /// index). Coincides with [`MessageSet::rm_order`] when every stream
    /// uses the paper's implicit deadline, and is the optimal static
    /// priority order for the constrained-deadline extension.
    #[must_use]
    pub fn dm_order(&self) -> Vec<usize> {
        let mut order: Vec<usize> = (0..self.streams.len()).collect();
        order.sort_by(|&a, &b| {
            self.streams[a]
                .relative_deadline()
                .total_cmp(&self.streams[b].relative_deadline())
                .then(self.streams[a].period.total_cmp(&self.streams[b].period))
                .then(a.cmp(&b))
        });
        order
    }

    /// The shortest relative deadline `D_min` in the set.
    #[must_use]
    pub fn min_deadline(&self) -> Seconds {
        self.streams
            .iter()
            .map(SyncStream::relative_deadline)
            .fold(Seconds::new(f64::INFINITY), Seconds::min)
    }

    /// Returns a copy with every message length multiplied by `factor`
    /// (rounded to the nearest bit, minimum one bit per message).
    ///
    /// # Panics
    ///
    /// Panics if `factor` is negative or not finite.
    #[must_use]
    pub fn with_scaled_lengths(&self, factor: f64) -> MessageSet {
        MessageSet {
            streams: self
                .streams
                .iter()
                .map(|s| s.with_scaled_length(factor))
                .collect(),
        }
    }

    /// Returns a copy with stream `id`'s length replaced.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range or `length_bits` is zero.
    #[must_use]
    pub fn with_stream_length(&self, id: StreamId, length_bits: Bits) -> MessageSet {
        assert!(!length_bits.is_zero(), "message length must be non-zero");
        let mut streams = self.streams.clone();
        streams[id.0] = streams[id.0].with_length(length_bits);
        MessageSet { streams }
    }
}

impl<'a> IntoIterator for &'a MessageSet {
    type Item = &'a SyncStream;
    type IntoIter = std::slice::Iter<'a, SyncStream>;
    fn into_iter(self) -> Self::IntoIter {
        self.streams.iter()
    }
}

impl fmt::Display for MessageSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, s) in self.streams.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{}: {}", StreamId(i), s)?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(period_ms: f64, bits: u64) -> SyncStream {
        SyncStream::new(Seconds::from_millis(period_ms), Bits::new(bits))
    }

    #[test]
    fn stream_utilization_eq3() {
        let s = ms(100.0, 1_000_000);
        let bw = Bandwidth::from_mbps(100.0);
        // C = 1e6 bits / 1e8 bps = 10 ms; U = 10/100 = 0.1.
        assert!((s.utilization(bw) - 0.1).abs() < 1e-12);
    }

    #[test]
    fn set_utilization_sums() {
        let set = MessageSet::new(vec![ms(100.0, 1_000_000), ms(50.0, 500_000)]).unwrap();
        let bw = Bandwidth::from_mbps(100.0);
        assert!((set.utilization(bw) - 0.2).abs() < 1e-12);
    }

    #[test]
    fn rejects_bad_inputs() {
        assert!(matches!(MessageSet::new(vec![]), Err(ModelError::EmptySet)));
        assert!(matches!(
            SyncStream::try_new(Seconds::ZERO, Bits::new(1)),
            Err(ModelError::InvalidPeriod { .. })
        ));
        assert!(matches!(
            SyncStream::try_new(Seconds::from_millis(1.0), Bits::ZERO),
            Err(ModelError::EmptyMessage { .. })
        ));
        // Set-level validation reports the right index.
        let bad = vec![
            ms(10.0, 100),
            SyncStream {
                period: Seconds::from_millis(5.0),
                length_bits: Bits::ZERO,
                deadline: None,
            },
        ];
        match MessageSet::new(bad) {
            Err(ModelError::EmptyMessage { index }) => assert_eq!(index, 1),
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn rm_order_sorts_by_period_with_stable_ties() {
        let set =
            MessageSet::new(vec![ms(30.0, 1), ms(10.0, 1), ms(30.0, 1), ms(20.0, 1)]).unwrap();
        assert_eq!(set.rm_order(), vec![1, 3, 0, 2]);
    }

    #[test]
    fn min_max_period() {
        let set = MessageSet::new(vec![ms(30.0, 1), ms(10.0, 1), ms(20.0, 1)]).unwrap();
        assert_eq!(set.min_period(), Seconds::from_millis(10.0));
        assert_eq!(set.max_period(), Seconds::from_millis(30.0));
    }

    #[test]
    fn scaling_rounds_and_clamps() {
        let set = MessageSet::new(vec![ms(10.0, 100), ms(10.0, 3)]).unwrap();
        let scaled = set.with_scaled_lengths(0.5);
        assert_eq!(scaled.stream(StreamId(0)).length_bits(), Bits::new(50));
        // 3 * 0.5 = 1.5 → rounds to 2.
        assert_eq!(scaled.stream(StreamId(1)).length_bits(), Bits::new(2));
        // Scaling by ~zero clamps at one bit.
        let tiny = set.with_scaled_lengths(1e-9);
        assert_eq!(tiny.stream(StreamId(0)).length_bits(), Bits::new(1));
        // Periods untouched.
        assert_eq!(
            scaled.stream(StreamId(0)).period(),
            Seconds::from_millis(10.0)
        );
    }

    #[test]
    fn with_stream_length_replaces_one() {
        let set = MessageSet::new(vec![ms(10.0, 100), ms(20.0, 200)]).unwrap();
        let new = set.with_stream_length(StreamId(1), Bits::new(250));
        assert_eq!(new.stream(StreamId(0)).length_bits(), Bits::new(100));
        assert_eq!(new.stream(StreamId(1)).length_bits(), Bits::new(250));
    }

    #[test]
    fn deadlines_default_to_period() {
        let s = ms(50.0, 100);
        assert!(s.has_implicit_deadline());
        assert_eq!(s.relative_deadline(), Seconds::from_millis(50.0));
        let tight = s.with_relative_deadline(Seconds::from_millis(20.0));
        assert!(!tight.has_implicit_deadline());
        assert_eq!(tight.relative_deadline(), Seconds::from_millis(20.0));
        assert_eq!(tight.period(), Seconds::from_millis(50.0));
        // Deadline survives scaling and length changes.
        assert_eq!(
            tight.with_scaled_length(2.0).relative_deadline(),
            Seconds::from_millis(20.0)
        );
        assert_eq!(
            tight.with_length(Bits::new(7)).relative_deadline(),
            Seconds::from_millis(20.0)
        );
    }

    #[test]
    #[should_panic(expected = "0 < D ≤ P")]
    fn deadline_beyond_period_rejected() {
        let _ = ms(50.0, 100).with_relative_deadline(Seconds::from_millis(60.0));
    }

    #[test]
    fn dm_order_uses_deadlines() {
        let streams = vec![
            ms(30.0, 1),                                                    // D = 30
            ms(50.0, 1).with_relative_deadline(Seconds::from_millis(10.0)), // D = 10
            ms(20.0, 1),                                                    // D = 20
        ];
        let set = MessageSet::new(streams).unwrap();
        assert_eq!(set.dm_order(), vec![1, 2, 0]);
        assert_eq!(set.rm_order(), vec![2, 0, 1]);
        assert_eq!(set.min_deadline(), Seconds::from_millis(10.0));
    }

    #[test]
    fn dm_order_matches_rm_order_for_implicit_deadlines() {
        let set = MessageSet::new(vec![ms(30.0, 1), ms(10.0, 1), ms(20.0, 1)]).unwrap();
        assert_eq!(set.dm_order(), set.rm_order());
        assert_eq!(set.min_deadline(), set.min_period());
    }

    #[test]
    fn display_and_iteration() {
        let set = MessageSet::new(vec![ms(10.0, 100)]).unwrap();
        assert!(set.to_string().contains("S1"));
        assert_eq!(set.iter().count(), 1);
        assert_eq!((&set).into_iter().count(), 1);
        assert_eq!(set.as_slice().len(), 1);
        assert!(!set.is_empty());
    }
}
