//! End-to-end tests of the persistent ring registry: a real server with a
//! `--state-dir`, restart survival with byte-identical state, the
//! incremental-vs-full evaluation savings the `STATS` counters expose, and
//! a randomized sweep asserting the incremental admission engine always
//! agrees with a from-scratch recomputation.

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::{Path, PathBuf};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use ringrt::registry::{ProtocolKind, RingRegistry, RingSpec};
use ringrt::service::{spawn, ServerHandle, ServiceConfig};
use ringrt::workload::MessageSetGenerator;

struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    fn connect(addr: SocketAddr) -> Client {
        let stream = TcpStream::connect(addr).expect("connect");
        let writer = stream.try_clone().expect("clone stream");
        Client {
            reader: BufReader::new(stream),
            writer,
        }
    }

    fn roundtrip(&mut self, line: &str) -> String {
        self.writer
            .write_all(format!("{line}\n").as_bytes())
            .expect("send request");
        let mut resp = String::new();
        self.reader.read_line(&mut resp).expect("read response");
        assert!(resp.ends_with('\n'), "truncated response: {resp:?}");
        resp.trim_end().to_owned()
    }
}

fn field<'a>(resp: &'a str, key: &str) -> &'a str {
    resp.split_whitespace()
        .find_map(|w| w.strip_prefix(&format!("{key}=")[..]))
        .unwrap_or_else(|| panic!("no field `{key}` in `{resp}`"))
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ringrt-it-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn server_with_state(dir: &Path) -> ServerHandle {
    spawn(ServiceConfig {
        addr: "127.0.0.1:0".to_owned(),
        workers: 2,
        queue_depth: 64,
        state_dir: Some(dir.to_path_buf()),
        ..ServiceConfig::default()
    })
    .expect("spawn service")
}

/// A ring with 50 admitted streams must come back from a server restart
/// with byte-identical `SHOW` output — and again after a compaction.
#[test]
fn fifty_stream_ring_survives_server_restart_byte_identically() {
    let dir = temp_dir("restart");
    let srv = server_with_state(&dir);
    let mut c = Client::connect(srv.addr());
    assert!(c
        .roundtrip("REGISTER ring=prod protocol=modified mbps=100 stations=60")
        .starts_with("OK"));

    // Admit 50 streams through one BATCH frame (one write, 50 answers).
    let mut frame = String::from("BATCH 50\n");
    for i in 0..50u64 {
        frame.push_str(&format!(
            "ADMIT ring=prod stream=s{i:03} period_ms={} bits={}\n",
            20 + (i % 40),
            1_000 + 16 * i,
        ));
    }
    c.writer.write_all(frame.as_bytes()).expect("send batch");
    for i in 0..50 {
        let mut resp = String::new();
        c.reader.read_line(&mut resp).expect("batch response");
        assert!(resp.starts_with("OK"), "admit {i}: {resp}");
        assert!(resp.contains("admitted=true"), "admit {i}: {resp}");
    }

    let before = c.roundtrip("SHOW ring=prod");
    assert!(before.contains("streams=50"), "{before}");
    assert_eq!(c.roundtrip("SHUTDOWN"), "OK cmd=shutdown");
    srv.join();

    // Restart on the same state dir: journal replay.
    let srv = server_with_state(&dir);
    let mut c = Client::connect(srv.addr());
    assert_eq!(
        before,
        c.roundtrip("SHOW ring=prod"),
        "SHOW diverged across restart (journal replay)"
    );
    let stats = c.roundtrip("STATS");
    assert_eq!(field(&stats, "replayed_streams"), "50", "{stats}");
    assert!(c.roundtrip("COMPACT").starts_with("OK"));
    assert_eq!(c.roundtrip("SHUTDOWN"), "OK cmd=shutdown");
    srv.join();

    // Restart again: snapshot load.
    let srv = server_with_state(&dir);
    let mut c = Client::connect(srv.addr());
    assert_eq!(
        before,
        c.roundtrip("SHOW ring=prod"),
        "SHOW diverged across restart (snapshot load)"
    );
    assert_eq!(c.roundtrip("SHUTDOWN"), "OK cmd=shutdown");
    srv.join();
    let _ = std::fs::remove_dir_all(&dir);
}

/// An incremental `ADMIT` must perform measurably fewer scheduling-point
/// evaluations than a full `CHECK` of the same ring, and `STATS` must
/// expose the aggregated counters proving it.
#[test]
fn incremental_admit_is_cheaper_than_full_check() {
    let srv = spawn(ServiceConfig {
        addr: "127.0.0.1:0".to_owned(),
        workers: 2,
        queue_depth: 64,
        ..ServiceConfig::default()
    })
    .expect("spawn service");
    let mut c = Client::connect(srv.addr());
    assert!(c
        .roundtrip("REGISTER ring=lab protocol=modified mbps=16 stations=40")
        .starts_with("OK"));

    // Strictly growing periods: each newcomer ranks last under DM, so the
    // incremental test re-checks exactly one priority level.
    let mut last_admit = String::new();
    for i in 0..30u64 {
        last_admit = c.roundtrip(&format!(
            "ADMIT ring=lab stream=s{i:02} period_ms={} bits=2000",
            20 + i,
        ));
        assert!(last_admit.starts_with("OK"), "{last_admit}");
        assert_eq!(field(&last_admit, "admitted"), "true", "{last_admit}");
    }
    assert_eq!(field(&last_admit, "incremental"), "true", "{last_admit}");
    let admit_evals: u64 = field(&last_admit, "evaluations").parse().unwrap();

    let check = c.roundtrip("CHECK ring=lab");
    assert!(check.starts_with("OK"), "{check}");
    assert_eq!(field(&check, "schedulable"), "true", "{check}");
    let check_evals: u64 = field(&check, "evaluations").parse().unwrap();
    assert!(
        admit_evals < check_evals,
        "incremental admit ({admit_evals} evaluations) not cheaper than \
         full check ({check_evals} evaluations)"
    );

    let stats = c.roundtrip("STATS");
    let inc_tests: u64 = field(&stats, "incremental_tests").parse().unwrap();
    let full_tests: u64 = field(&stats, "full_tests").parse().unwrap();
    let inc_evals: u64 = field(&stats, "incremental_evaluations").parse().unwrap();
    let full_evals: u64 = field(&stats, "full_evaluations").parse().unwrap();
    assert!(inc_tests >= 29, "{stats}");
    assert!(full_tests >= 1, "{stats}");
    // Per-test average work: incremental must beat full.
    assert!(
        inc_evals * full_tests < full_evals * inc_tests,
        "incremental mean not below full mean: {stats}"
    );
    srv.join();
}

/// Randomized admit/remove sequences over the paper's stream population:
/// the incremental verdict must always equal a from-scratch recomputation
/// of the stored set, for both PDP variants and TTP. (In debug builds the
/// engine additionally asserts equality on *every* incremental path,
/// including rejected admissions.)
#[test]
fn randomized_incremental_equals_full_across_protocols() {
    for &(protocol, mbps) in &[
        (ProtocolKind::Ieee8025, 16.0),
        (ProtocolKind::Modified, 16.0),
        (ProtocolKind::Fddi, 100.0),
    ] {
        for seed in 0..6u64 {
            let mut rng = StdRng::seed_from_u64(0xD1CE_0000 + seed);
            let set = MessageSetGenerator::paper_population(12).generate(&mut rng);
            let reg = RingRegistry::in_memory();
            reg.register(
                "r",
                RingSpec {
                    protocol,
                    mbps,
                    stations: Some(12),
                },
            )
            .expect("register");

            let mut admitted: Vec<String> = Vec::new();
            for (i, stream) in set.as_slice().iter().enumerate() {
                let name = format!("s{i:02}");
                let outcome = reg.admit("r", &name, *stream).expect("admit");
                if outcome.applied {
                    admitted.push(name.clone());
                    let full = reg.check_full("r").expect("check_full");
                    assert_eq!(
                        outcome.check.schedulable, full.schedulable,
                        "admit verdict diverged: {protocol:?} seed={seed} stream={name}"
                    );
                }
                // Occasionally remove a random admitted stream.
                if !admitted.is_empty() && rng.gen_range(0u64..3) == 0 {
                    let victim =
                        admitted.remove(rng.gen_range(0u64..admitted.len() as u64) as usize);
                    let outcome = reg.remove("r", &victim).expect("remove");
                    if !admitted.is_empty() {
                        let full = reg.check_full("r").expect("check_full");
                        assert_eq!(
                            outcome.check.schedulable, full.schedulable,
                            "remove verdict diverged: {protocol:?} seed={seed} stream={victim}"
                        );
                    }
                }
            }
        }
    }
}

/// A server with a tiny `--segment-bytes` budget must spread its journal
/// over many `journal.NNNNNN.log` segments and still restart with
/// byte-identical `SHOW` output — and keep only the post-compaction tail
/// segments after a `COMPACT`.
#[test]
fn segmented_journal_survives_server_restart_byte_identically() {
    let dir = temp_dir("segmented");
    let spawn_segmented = |dir: &Path| {
        spawn(ServiceConfig {
            addr: "127.0.0.1:0".to_owned(),
            workers: 2,
            queue_depth: 64,
            state_dir: Some(dir.to_path_buf()),
            segment_bytes: Some(160),
            ..ServiceConfig::default()
        })
        .expect("spawn service")
    };
    let srv = spawn_segmented(&dir);
    let mut c = Client::connect(srv.addr());
    assert!(c
        .roundtrip("REGISTER ring=seg protocol=timed-token mbps=100 stations=32")
        .starts_with("OK"));
    for i in 0..12u64 {
        let resp = c.roundtrip(&format!(
            "ADMIT ring=seg stream=s{i:02} period_ms={} bits={}",
            20 + i,
            1_000 + 10 * i
        ));
        assert!(resp.contains("admitted=true"), "admit {i}: {resp}");
    }
    let before = c.roundtrip("SHOW ring=seg");
    assert_eq!(c.roundtrip("SHUTDOWN"), "OK cmd=shutdown");
    srv.join();

    let segments = |dir: &Path| -> Vec<String> {
        let mut names: Vec<String> = std::fs::read_dir(dir)
            .expect("read state dir")
            .map(|e| {
                e.expect("dir entry")
                    .file_name()
                    .to_string_lossy()
                    .into_owned()
            })
            .filter(|n| n.starts_with("journal.") && n.ends_with(".log"))
            .collect();
        names.sort();
        names
    };
    assert!(
        segments(&dir).len() >= 3,
        "160-byte budget must rotate: {:?}",
        segments(&dir)
    );

    let srv = spawn_segmented(&dir);
    let mut c = Client::connect(srv.addr());
    assert_eq!(
        before,
        c.roundtrip("SHOW ring=seg"),
        "SHOW diverged across a segmented restart"
    );
    assert!(c.roundtrip("COMPACT").starts_with("OK"));
    assert_eq!(c.roundtrip("SHUTDOWN"), "OK cmd=shutdown");
    srv.join();
    assert_eq!(
        segments(&dir).len(),
        1,
        "compaction must garbage-collect sealed segments"
    );

    let srv = spawn_segmented(&dir);
    let mut c = Client::connect(srv.addr());
    assert_eq!(
        before,
        c.roundtrip("SHOW ring=seg"),
        "SHOW diverged after compaction"
    );
    assert_eq!(c.roundtrip("SHUTDOWN"), "OK cmd=shutdown");
    srv.join();
    let _ = std::fs::remove_dir_all(&dir);
}
