//! Chrome trace-event JSON export.
//!
//! Renders drained [`SpanEvent`]s in the trace-event format's "JSON
//! object" flavour (`{"traceEvents": [...]}`) using complete (`"ph":"X"`)
//! events, which both Perfetto and `chrome://tracing` load directly. The
//! whole document is a single line so it travels over the service's
//! line-oriented wire protocol unframed.

use crate::json::{escape, Json};
use crate::SpanEvent;
use std::fmt::Write as _;

/// Renders `events` as a one-line Chrome trace-event JSON document.
///
/// Timestamps (`ts`) and durations (`dur`) are microseconds, as the
/// format requires; `pid` is fixed at 1 (one process), and `tid` carries
/// the recorder's hashed thread id.
#[must_use]
pub fn render_chrome_trace(events: &[SpanEvent]) -> String {
    let mut out = String::with_capacity(64 + events.len() * 96);
    out.push_str("{\"traceEvents\":[");
    for (i, ev) in events.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"name\":{},\"cat\":{},\"ph\":\"X\",\"ts\":{},\"dur\":{},\"pid\":1,\"tid\":{}}}",
            escape(ev.name),
            escape(ev.cat),
            ev.start_us,
            ev.dur_us,
            ev.tid,
        );
    }
    out.push_str("]}");
    out
}

/// Validates that `text` is a well-formed trace-event document and
/// returns the number of events it carries.
///
/// Checks the structural invariants the viewers rely on: a top-level
/// `traceEvents` array whose entries each carry string `name`/`cat`/`ph`
/// and numeric `ts`/`dur`/`pid`/`tid`, with non-negative timing fields.
///
/// # Errors
///
/// Returns a description of the first violated invariant.
pub fn validate_chrome_trace(text: &str) -> Result<usize, String> {
    let doc = Json::parse(text)?;
    let events = doc
        .get("traceEvents")
        .ok_or("missing `traceEvents` key")?
        .as_array()
        .ok_or("`traceEvents` is not an array")?;
    for (i, ev) in events.iter().enumerate() {
        for key in ["name", "cat", "ph"] {
            ev.get(key)
                .and_then(Json::as_str)
                .ok_or_else(|| format!("event {i}: `{key}` missing or not a string"))?;
        }
        for key in ["ts", "dur", "pid", "tid"] {
            let v = ev
                .get(key)
                .and_then(Json::as_f64)
                .ok_or_else(|| format!("event {i}: `{key}` missing or not a number"))?;
            if !v.is_finite() || v < 0.0 {
                return Err(format!("event {i}: `{key}` = {v} is not a valid timing"));
            }
        }
        if ev.get("ph").and_then(Json::as_str) != Some("X") {
            return Err(format!("event {i}: expected complete event (`ph` = \"X\")"));
        }
    }
    Ok(events.len())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn event(name: &'static str, start_us: u64, dur_us: u64) -> SpanEvent {
        SpanEvent {
            cat: "test",
            name,
            tid: 7,
            start_us,
            dur_us,
        }
    }

    #[test]
    fn empty_trace_is_valid() {
        let text = render_chrome_trace(&[]);
        assert_eq!(text, "{\"traceEvents\":[]}");
        assert_eq!(validate_chrome_trace(&text), Ok(0));
    }

    #[test]
    fn rendered_events_validate_and_roundtrip() {
        let events = [event("parse", 10, 2), event("execute", 12, 100)];
        let text = render_chrome_trace(&events);
        assert!(!text.contains('\n'), "must stay a single wire line");
        assert_eq!(validate_chrome_trace(&text), Ok(2));

        let doc = Json::parse(&text).unwrap();
        let parsed = doc.get("traceEvents").unwrap().as_array().unwrap();
        assert_eq!(parsed[0].get("name").unwrap().as_str(), Some("parse"));
        assert_eq!(parsed[1].get("ts").unwrap().as_f64(), Some(12.0));
        assert_eq!(parsed[1].get("dur").unwrap().as_f64(), Some(100.0));
        assert_eq!(parsed[0].get("tid").unwrap().as_f64(), Some(7.0));
    }

    #[test]
    fn validator_rejects_malformed_documents() {
        assert!(validate_chrome_trace("{}").is_err());
        assert!(validate_chrome_trace("{\"traceEvents\": 3}").is_err());
        assert!(
            validate_chrome_trace("{\"traceEvents\":[{\"name\":\"x\"}]}").is_err(),
            "events missing timing fields must be rejected"
        );
        assert!(validate_chrome_trace(
            "{\"traceEvents\":[{\"name\":\"x\",\"cat\":\"c\",\"ph\":\"B\",\
             \"ts\":1,\"dur\":1,\"pid\":1,\"tid\":1}]}"
        )
        .is_err());
    }
}
