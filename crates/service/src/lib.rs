//! Online admission-control service for the `ringrt` analysis kernels.
//!
//! Kamat & Zhao's schedulability criteria answer an *admission* question —
//! "may this synchronous message set enter the ring?" — and in a deployed
//! network that question arrives online, from many clients, with latency
//! expectations of its own. This crate serves the analytic kernels
//! (`ringrt-core`), the saturation boundary search (`ringrt-breakdown`)
//! and the frame-level simulator (`ringrt-sim`) over a TCP socket with the
//! operational envelope such a component needs:
//!
//! * a **newline-delimited text protocol** ([`protocol`]) reusing the
//!   CLI's message-set format inline;
//! * a **bounded worker pool** ([`server`]) that sheds load with an
//!   explicit `BUSY` when the queue is full and expires requests that
//!   overstay their per-request deadline — an admission controller that
//!   itself degrades predictably;
//! * a **sharded, canonicalizing result cache** ([`cache`]) so repeated
//!   verdict queries cost a hash lookup, not a re-analysis;
//! * **observability** ([`metrics`]): request/outcome counters,
//!   per-command and per-stage (parse / cache / queue-wait / execute /
//!   respond) latency histograms (reusing the simulator's log-bucket
//!   [`DurationHistogram`](ringrt_des::stats::DurationHistogram)),
//!   exported through `STATS` (plain text), `METRICS` (Prometheus text
//!   exposition), and `TRACE` (recent `ringrt-obs` flight-recorder spans
//!   as Chrome trace-event JSON); `STATS RESET` starts a fresh
//!   measurement window without touching gauges or warm cache entries;
//! * **graceful shutdown** that drains queued and in-flight work before
//!   the threads exit.
//!
//! Start it from the CLI with `ringrt serve`, or embed it:
//!
//! ```
//! use std::io::{BufRead, BufReader, Write};
//! use std::net::TcpStream;
//!
//! let server = ringrt_service::spawn(ringrt_service::ServiceConfig {
//!     addr: "127.0.0.1:0".into(),
//!     workers: 2,
//!     ..Default::default()
//! })?;
//!
//! let mut conn = TcpStream::connect(server.addr())?;
//! writeln!(conn, "CHECK mbps=16 set=20,20000;50,60000 protocol=modified")?;
//! let mut reply = String::new();
//! BufReader::new(conn.try_clone()?).read_line(&mut reply)?;
//! assert!(reply.contains("schedulable=true"), "{reply}");
//!
//! server.join();
//! # Ok::<(), std::io::Error>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod engine;
mod event;
pub mod metrics;
pub mod protocol;
pub mod replication;
pub mod server;

pub use cache::{CacheKey, ResultCache};
pub use protocol::{
    parse_request, AbuRequest, AnalysisRequest, CommandKind, ProtocolKind, Request, RingSpec,
    DEFAULT_ABU_SAMPLES, MAX_ABU_SAMPLES, MAX_BATCH, MAX_LINE_BYTES,
};
pub use replication::{ReplicationState, Role};
pub use server::{spawn, Frontend, ServerHandle, ServiceConfig};
