//! ADMIT-SCALE — per-admission latency of the columnar stream store's
//! incremental admission paths as the ring grows from 10³ to 10⁵ streams.
//!
//! One ring, pinned station count, streams admitted one at a time through
//! `RingRegistry::admit` (the same path the TCP service takes minus the
//! socket). Two protocols tell the two halves of the story:
//!
//! * **fddi (Theorem 5.1):** identical periods keep the negotiated TTRT
//!   bit-stable, so from admit #2 every admission is the O(1) delta
//!   update `cached_sum + new_term`. p99 latency must stay flat — the
//!   sub-linear headline. The measured **growth exponent**
//!   `log(p99_ratio) / log(size_ratio)` is asserted `< 0.5`.
//! * **modified (Theorem 4.1):** streams arrive in deadline order, so the
//!   DM-rank index pins the re-test set to a single priority level
//!   (`evaluations` stays O(1)), but that level's response-time analysis
//!   still walks all higher-priority streams — latency grows linearly.
//!   The contrast shows what the rank index saves and what it cannot.
//!
//! Writes `BENCH_admit.json` for CI artifact upload. `--smoke` switches
//! to a release-mode end-to-end check instead: a real TCP server, one
//! 10k-stream ADMIT batch, REMOVE round-trips, and paged `SHOW` walks,
//! exiting non-zero on any wrong answer.

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Instant;

use ringrt_breakdown::table::{cell, Table};
use ringrt_des::stats::DurationHistogram;
use ringrt_registry::{ProtocolKind, RingRegistry, RingSpec};
use ringrt_service::{spawn, ServiceConfig};
use ringrt_units::{Bits, Seconds, SimDuration};

const OUT_PATH: &str = "BENCH_admit.json";

/// Growth exponents at or above this are not sub-linear enough to claim
/// the headline (0.5 = square-root growth).
const SUBLINEAR_EXPONENT: f64 = 0.5;

struct Options {
    quick: bool,
    smoke: bool,
}

fn parse_args() -> Options {
    let mut opts = Options {
        quick: false,
        smoke: false,
    };
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--quick" => opts.quick = true,
            "--smoke" => opts.smoke = true,
            "--help" | "-h" => {
                eprintln!(
                    "usage: exp_admit_scale [--quick] [--smoke]\n\
                     \x20 --quick  down-scaled sizes for CI\n\
                     \x20 --smoke  TCP round-trip smoke test (10k streams) instead of the sweep"
                );
                std::process::exit(2);
            }
            other => {
                eprintln!("unknown flag `{other}` (try --help)");
                std::process::exit(2);
            }
        }
    }
    opts
}

/// The candidate stream for admission `i` under `protocol`.
///
/// fddi: identical 10 s periods / 100-bit messages, so `P_min` — and with
/// it the √(Θ'·P_min) TTRT — is bit-identical on every admission and the
/// O(1) cached-sum path engages. modified (PDP): strictly increasing
/// implicit deadlines, so each newcomer lands at the bottom DM rank and
/// only its own level is re-tested. PDP periods are long (1000 s):
/// the modified protocol charges every message the full token walk,
/// which at 10⁴ pinned stations is milliseconds per higher-priority
/// stream, and the sweep wants the ring admissible all the way up.
fn candidate(protocol: ProtocolKind, i: usize) -> ringrt_model::SyncStream {
    let period = match protocol {
        ProtocolKind::Fddi => Seconds::new(10.0),
        _ => Seconds::new(1000.0 + i as f64 * 1e-3),
    };
    ringrt_model::SyncStream::new(period, Bits::new(100))
}

struct Row {
    protocol: ProtocolKind,
    streams: usize,
    p50_us: f64,
    p99_us: f64,
    mean_evaluations: f64,
    incremental_share: f64,
    build_s: f64,
}

fn quantile_us(h: &DurationHistogram, q: f64) -> f64 {
    h.quantile(q)
        .map_or(f64::NAN, |d| d.as_picos() as f64 / 1e6)
}

/// Admits `n` streams into one fresh pinned ring, timing every admission.
fn run_ring(protocol: ProtocolKind, n: usize) -> Row {
    let reg = RingRegistry::in_memory();
    reg.register(
        "scale",
        RingSpec {
            protocol,
            mbps: 10_000.0,
            stations: Some(n),
        },
    )
    .expect("register");

    let mut hist = DurationHistogram::new();
    let mut evaluations = 0u64;
    let mut incremental = 0u64;
    let started = Instant::now();
    for i in 0..n {
        let stream = candidate(protocol, i);
        let t = Instant::now();
        let out = reg.admit("scale", &format!("s{i}"), stream).expect("admit");
        let ns = t.elapsed().as_nanos() as u64;
        hist.push(SimDuration::from_picos(ns.saturating_mul(1000)));
        assert!(out.applied, "{protocol:?} admission {i}/{n} rejected");
        evaluations += out.check.evaluations;
        incremental += u64::from(out.check.incremental);
    }
    let build_s = started.elapsed().as_secs_f64();
    Row {
        protocol,
        streams: n,
        p50_us: quantile_us(&hist, 0.50),
        p99_us: quantile_us(&hist, 0.99),
        mean_evaluations: evaluations as f64 / n as f64,
        incremental_share: incremental as f64 / n as f64,
        build_s,
    }
}

fn protocol_token(p: ProtocolKind) -> &'static str {
    match p {
        ProtocolKind::Fddi => "fddi",
        ProtocolKind::Modified => "modified",
        ProtocolKind::Ieee8025 => "ieee802.5",
    }
}

/// `log(p99_ratio) / log(size_ratio)` between the smallest and largest
/// ring: 1.0 = linear growth, 0.0 = flat.
fn growth_exponent(rows: &[Row]) -> f64 {
    let (first, last) = (&rows[0], &rows[rows.len() - 1]);
    let p99_ratio = (last.p99_us / first.p99_us).max(f64::MIN_POSITIVE);
    p99_ratio.ln() / ((last.streams as f64 / first.streams as f64).ln())
}

fn write_json(fddi: &[Row], pdp: &[Row], exponent: f64, sublinear: bool) {
    let mut json = String::from("{\n");
    json.push_str("  \"experiment\": \"ADMIT-SCALE\",\n");
    json.push_str("  \"rows\": [\n");
    let all: Vec<&Row> = fddi.iter().chain(pdp.iter()).collect();
    for (i, r) in all.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"protocol\": \"{}\", \"streams\": {}, \"p50_us\": {:.3}, \
             \"p99_us\": {:.3}, \"mean_evaluations\": {:.3}, \
             \"incremental_share\": {:.4}, \"build_s\": {:.3}}}{}\n",
            protocol_token(r.protocol),
            r.streams,
            r.p50_us,
            r.p99_us,
            r.mean_evaluations,
            r.incremental_share,
            r.build_s,
            if i + 1 < all.len() { "," } else { "" },
        ));
    }
    json.push_str("  ],\n");
    json.push_str(&format!("  \"fddi_p99_growth_exponent\": {exponent:.4},\n"));
    json.push_str(&format!(
        "  \"sublinear_threshold\": {SUBLINEAR_EXPONENT},\n"
    ));
    json.push_str(&format!("  \"sublinear\": {sublinear}\n"));
    json.push_str("}\n");
    std::fs::write(OUT_PATH, json).expect("write BENCH_admit.json");
}

fn run_sweep(quick: bool) {
    println!("# ADMIT-SCALE: per-admission latency vs ring size (columnar store)");
    println!(
        "# mode = {}, protocols = fddi (O(1) path) + modified (rank-pinned PDP)",
        if quick { "quick" } else { "full" }
    );
    println!();

    let fddi_sizes: &[usize] = if quick {
        &[200, 1_000, 5_000]
    } else {
        &[1_000, 10_000, 100_000]
    };
    // PDP admissions cost O(n) each even on the incremental path (the
    // re-tested level walks every higher-priority stream), so the sweep
    // caps the contrast ring well below the fddi headline sizes.
    let pdp_sizes: &[usize] = if quick {
        &[200, 1_000, 2_000]
    } else {
        &[1_000, 5_000, 10_000]
    };

    let fddi: Vec<Row> = fddi_sizes
        .iter()
        .map(|&n| run_ring(ProtocolKind::Fddi, n))
        .collect();
    let pdp: Vec<Row> = pdp_sizes
        .iter()
        .map(|&n| run_ring(ProtocolKind::Modified, n))
        .collect();

    let mut table = Table::new(&[
        "protocol",
        "streams",
        "p50_us",
        "p99_us",
        "mean_evals",
        "incremental",
        "build_s",
    ]);
    for r in fddi.iter().chain(pdp.iter()) {
        table.push_row(&[
            protocol_token(r.protocol).into(),
            r.streams.to_string(),
            cell(r.p50_us, 3),
            cell(r.p99_us, 3),
            cell(r.mean_evaluations, 3),
            cell(r.incremental_share, 4),
            cell(r.build_s, 3),
        ]);
    }
    print!("{}", table.to_csv());
    println!();

    let exponent = growth_exponent(&fddi);
    let sublinear = exponent < SUBLINEAR_EXPONENT;
    write_json(&fddi, &pdp, exponent, sublinear);

    println!(
        "# fddi p99 growth exponent {:.4} over {}x size growth (threshold {}): {}",
        exponent,
        fddi_sizes[fddi_sizes.len() - 1] / fddi_sizes[0],
        SUBLINEAR_EXPONENT,
        if sublinear { "PASS" } else { "FAIL" },
    );
    println!(
        "# mean re-test set size (evaluations/admit): fddi {:.2}, modified {:.2}",
        fddi[fddi.len() - 1].mean_evaluations,
        pdp[pdp.len() - 1].mean_evaluations,
    );
    println!("# wrote {OUT_PATH}");
    if !sublinear {
        eprintln!("FAIL: fddi p99 admission latency is not sub-linear in ring size");
        std::process::exit(1);
    }
}

// --- smoke mode -----------------------------------------------------------

struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    fn connect(addr: SocketAddr) -> Client {
        let stream = TcpStream::connect(addr).expect("connect");
        stream.set_nodelay(true).ok();
        let writer = stream.try_clone().expect("clone");
        Client {
            reader: BufReader::new(stream),
            writer,
        }
    }

    fn roundtrip(&mut self, line: &str) -> String {
        self.writer
            .write_all(format!("{line}\n").as_bytes())
            .expect("send");
        let mut resp = String::new();
        self.reader.read_line(&mut resp).expect("recv");
        resp.trim_end().to_owned()
    }
}

/// End-to-end smoke: a live server holding a 10k-stream ring must answer
/// ADMIT / REMOVE / paged SHOW round-trips correctly.
fn run_smoke(quick: bool) {
    let streams = if quick { 2_000 } else { 10_000 };
    println!("# ADMIT-SCALE --smoke: TCP round-trips against a {streams}-stream ring");
    let server = spawn(ServiceConfig {
        addr: "127.0.0.1:0".to_owned(),
        workers: 2,
        queue_depth: 256,
        ..ServiceConfig::default()
    })
    .expect("spawn server");
    let mut c = Client::connect(server.addr());

    let resp = c.roundtrip(&format!(
        "REGISTER ring=smoke protocol=fddi mbps=10000 stations={streams}"
    ));
    assert!(resp.starts_with("OK"), "{resp}");

    // Pipelined admissions in protocol-max batches of 1024.
    let started = Instant::now();
    let mut incremental = 0usize;
    let mut sent = 0usize;
    while sent < streams {
        let batch = (streams - sent).min(1024);
        let mut frame = format!("BATCH {batch}\n");
        for i in sent..sent + batch {
            frame.push_str(&format!(
                "ADMIT ring=smoke stream=s{i} period_ms=10000 bits=100\n"
            ));
        }
        c.writer.write_all(frame.as_bytes()).expect("send batch");
        for i in sent..sent + batch {
            let mut resp = String::new();
            c.reader.read_line(&mut resp).expect("batch recv");
            assert!(resp.contains("admitted=true"), "admit {i}: {resp}");
            incremental += usize::from(resp.contains("incremental=true"));
        }
        sent += batch;
    }
    let admit_s = started.elapsed().as_secs_f64();
    assert!(
        incremental >= streams - 1,
        "only {incremental}/{streams} admissions took the incremental path"
    );

    // Paged SHOW walks the whole ring in admission order without ever
    // producing a full dump; the unpaged header still reports the total.
    let page_size = 1_000;
    let mut walked = 0usize;
    let mut offset = 0usize;
    loop {
        let resp = c.roundtrip(&format!(
            "SHOW ring=smoke limit={page_size} offset={offset}"
        ));
        assert!(
            resp.contains(&format!("streams={streams} ")),
            "paged SHOW lost the ring-wide count: {resp}"
        );
        let set = resp.rsplit(" set=").next().expect("set field");
        if set == "-" {
            break;
        }
        let entries: Vec<&str> = set.split(';').collect();
        // Admission order: the page starting at `offset` begins with s{offset}.
        assert!(
            entries[0].starts_with(&format!("s{offset}:")),
            "page at offset {offset} starts with {}",
            entries[0]
        );
        walked += entries.len();
        offset += entries.len();
        if entries.len() < page_size {
            break;
        }
    }
    assert_eq!(walked, streams, "paged SHOW walked the wrong stream count");

    // Remove a slice and re-check the paging window shifts accordingly.
    for i in 0..page_size {
        let resp = c.roundtrip(&format!("REMOVE ring=smoke stream=s{i}"));
        assert!(resp.starts_with("OK"), "remove {i}: {resp}");
    }
    let resp = c.roundtrip("SHOW ring=smoke limit=1 offset=0");
    assert!(
        resp.contains(&format!("streams={} ", streams - page_size)),
        "stream count after removals: {resp}"
    );
    assert!(
        resp.contains(&format!("set=s{page_size}:")),
        "first live stream after removals: {resp}"
    );

    // Store gauges surface through STATS.
    let stats = c.roundtrip("STATS");
    assert!(
        stats.contains(&format!("streams_total={}", streams - page_size)),
        "{stats}"
    );
    assert!(stats.contains("store_bytes="), "{stats}");

    server.shutdown();
    println!(
        "# PASS: {streams} admissions ({incremental} incremental) in {admit_s:.2}s, \
         paged SHOW walk + {page_size} removals verified"
    );
}

fn main() {
    let opts = parse_args();
    if opts.smoke {
        run_smoke(opts.quick);
    } else {
        run_sweep(opts.quick);
    }
}
