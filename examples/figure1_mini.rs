//! A down-scaled rendition of the paper's Figure 1 through the library
//! API: average breakdown utilization of the three protocols across a
//! bandwidth sweep, printed as CSV (pipe into your plotter of choice).
//!
//! The full-size reproduction (100 stations, 100 samples/point) lives in
//! the `exp_fig1` binary of the `ringrt-bench` crate; this example keeps
//! the parameters small enough to finish in seconds.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example figure1_mini
//! ```

use ringrt::breakdown::sweep::{figure1, SweepConfig};
use ringrt::breakdown::table::{cell, Table};

fn main() {
    let config = SweepConfig {
        stations: 20,
        samples: 12,
        seed: 0xF16_0001,
        tolerance: 3e-3,
    };
    let bandwidths = [1.0, 3.162, 10.0, 31.62, 100.0, 316.2, 1000.0];
    let rows = figure1(&bandwidths, &config);

    let mut table = Table::new(&["bandwidth_mbps", "ieee_802_5", "modified_802_5", "fddi"]);
    for r in &rows {
        table.push_row(&[
            cell(r.mbps, 3),
            cell(r.ieee_802_5.mean, 3),
            cell(r.modified_802_5.mean, 3),
            cell(r.fddi.mean, 3),
        ]);
    }
    println!("{}", table.to_markdown());

    // The qualitative shape the paper reports:
    let low = &rows[0];
    let high = rows.last().unwrap();
    println!(
        "at {} Mbps the priority driven protocol leads ({:.2} vs {:.2});",
        low.mbps, low.modified_802_5.mean, low.fddi.mean
    );
    println!(
        "at {} Mbps the timed token protocol leads ({:.2} vs {:.2}).",
        high.mbps, high.fddi.mean, high.modified_802_5.mean
    );
}
