//! Deterministic filesystem fault injection for the journaled store.
//!
//! Every durable operation the [`Store`](crate::Store) performs — file
//! creation, record writes, fsyncs, renames, truncations, deletions — is
//! routed through a [`FailpointFs`], which counts operations and can be
//! armed with a [`FaultPlan`] to fail at an exact operation index,
//! optionally after letting a torn prefix of the bytes land (modelling a
//! crash mid-`write`). A test harness first dry-runs a workload to learn
//! its operation count, then replays it once per index with the failure
//! armed there, asserting after each schedule that recovery reconstructs
//! exactly the state whose operations completed.
//!
//! The default `FailpointFs` is permanently disarmed and adds one relaxed
//! atomic increment per operation, so production stores pay nothing
//! measurable for the instrumentation.

use std::fs::{self, File, OpenOptions};
use std::io::{self, Write as _};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::spec::RegistryError;

/// Marker embedded in every injected error message so tests can tell an
/// injected crash from a real I/O failure.
const INJECTED_MARKER: &str = "failpoint: injected crash";

/// When and how an armed [`FailpointFs`] fails.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultPlan {
    /// 1-based durable-operation index at which to fail. Operation
    /// numbering restarts only when [`FailpointFs::reset_ops`] is called,
    /// so a plan can target any point of a multi-step workload.
    pub fail_at_op: u64,
    /// For a failing *write* operation: how many bytes of the record to
    /// let through before the error (a torn write). `None` fails before
    /// any byte lands; non-write operations ignore the field and fail
    /// without side effects.
    pub torn_bytes: Option<usize>,
}

#[derive(Debug, Default)]
struct FailState {
    ops: AtomicU64,
    plan: Mutex<Option<FaultPlan>>,
}

/// A cloneable handle to a shared fault-injection state; clones observe
/// and trigger the same operation counter and plan.
#[derive(Debug, Clone, Default)]
pub struct FailpointFs {
    state: Arc<FailState>,
}

impl FailpointFs {
    /// A disarmed fault injector (the production default).
    #[must_use]
    pub fn new() -> Self {
        FailpointFs::default()
    }

    /// Arms the injector: the `plan.fail_at_op`-th durable operation from
    /// now on fails. Replaces any previous plan.
    pub fn arm(&self, plan: FaultPlan) {
        *self.lock_plan() = Some(plan);
    }

    /// Disarms the injector; subsequent operations succeed.
    pub fn disarm(&self) {
        *self.lock_plan() = None;
    }

    /// Durable operations counted so far (dry-run bookkeeping).
    #[must_use]
    pub fn ops(&self) -> u64 {
        self.state.ops.load(Ordering::SeqCst)
    }

    /// Zeroes the operation counter so a fresh workload's indices start
    /// at 1.
    pub fn reset_ops(&self) {
        self.state.ops.store(0, Ordering::SeqCst);
    }

    /// Whether `err` is an injected crash rather than a real I/O failure.
    #[must_use]
    pub fn is_injected(err: &RegistryError) -> bool {
        err.to_string().contains(INJECTED_MARKER)
    }

    fn lock_plan(&self) -> std::sync::MutexGuard<'_, Option<FaultPlan>> {
        self.state
            .plan
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Counts one durable operation; returns the plan if this is the one
    /// that must fail.
    fn tick(&self) -> Option<FaultPlan> {
        let op = self.state.ops.fetch_add(1, Ordering::SeqCst) + 1;
        match *self.lock_plan() {
            Some(plan) if plan.fail_at_op == op => Some(plan),
            _ => None,
        }
    }

    fn injected() -> io::Error {
        io::Error::other(INJECTED_MARKER)
    }

    /// `File::create` (truncating).
    ///
    /// # Errors
    ///
    /// The underlying I/O error, or an injected crash.
    pub fn create(&self, path: &Path) -> io::Result<File> {
        if self.tick().is_some() {
            return Err(Self::injected());
        }
        File::create(path)
    }

    /// Creates a file that must not already exist (fresh journal segment).
    ///
    /// # Errors
    ///
    /// The underlying I/O error, or an injected crash.
    pub fn create_new(&self, path: &Path) -> io::Result<File> {
        if self.tick().is_some() {
            return Err(Self::injected());
        }
        OpenOptions::new().create_new(true).append(true).open(path)
    }

    /// Opens (creating if needed) a file for appending.
    ///
    /// # Errors
    ///
    /// The underlying I/O error, or an injected crash.
    pub fn open_append(&self, path: &Path) -> io::Result<File> {
        if self.tick().is_some() {
            return Err(Self::injected());
        }
        OpenOptions::new().create(true).append(true).open(path)
    }

    /// Writes all of `bytes`; an injected crash with
    /// [`FaultPlan::torn_bytes`] lands a torn prefix first.
    ///
    /// # Errors
    ///
    /// The underlying I/O error, or an injected crash.
    pub fn write_all(&self, file: &mut File, bytes: &[u8]) -> io::Result<()> {
        if let Some(plan) = self.tick() {
            if let Some(torn) = plan.torn_bytes {
                let torn = torn.min(bytes.len());
                // A torn write is only observable after the OS flushes it;
                // model the worst case where the prefix reaches disk.
                file.write_all(&bytes[..torn])?;
                let _ = file.sync_data();
            }
            return Err(Self::injected());
        }
        file.write_all(bytes)
    }

    /// `File::sync_data`.
    ///
    /// # Errors
    ///
    /// The underlying I/O error, or an injected crash.
    pub fn sync_data(&self, file: &File) -> io::Result<()> {
        if self.tick().is_some() {
            return Err(Self::injected());
        }
        file.sync_data()
    }

    /// `File::sync_all`.
    ///
    /// # Errors
    ///
    /// The underlying I/O error, or an injected crash.
    pub fn sync_all(&self, file: &File) -> io::Result<()> {
        if self.tick().is_some() {
            return Err(Self::injected());
        }
        file.sync_all()
    }

    /// `fs::rename` (snapshot / epoch publication).
    ///
    /// # Errors
    ///
    /// The underlying I/O error, or an injected crash.
    pub fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        if self.tick().is_some() {
            return Err(Self::injected());
        }
        fs::rename(from, to)
    }

    /// `fs::remove_file` (sealed-segment garbage collection).
    ///
    /// # Errors
    ///
    /// The underlying I/O error, or an injected crash.
    pub fn remove_file(&self, path: &Path) -> io::Result<()> {
        if self.tick().is_some() {
            return Err(Self::injected());
        }
        fs::remove_file(path)
    }

    /// `File::set_len` (torn-tail truncation).
    ///
    /// # Errors
    ///
    /// The underlying I/O error, or an injected crash.
    pub fn set_len(&self, file: &File, len: u64) -> io::Result<()> {
        if self.tick().is_some() {
            return Err(Self::injected());
        }
        file.set_len(len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_operations_and_fails_at_the_armed_index() {
        let dir = std::env::temp_dir().join(format!(
            "ringrt-failpoint-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        let fp = FailpointFs::new();
        let path = dir.join("probe.log");
        let mut f = fp.create(&path).unwrap();
        fp.write_all(&mut f, b"hello\n").unwrap();
        fp.sync_data(&f).unwrap();
        assert_eq!(fp.ops(), 3);
        // Arm the next write: it must fail without landing bytes.
        fp.arm(FaultPlan {
            fail_at_op: 4,
            torn_bytes: None,
        });
        assert!(fp.write_all(&mut f, b"doomed\n").is_err());
        assert_eq!(fs::read(&path).unwrap(), b"hello\n");
        // Disarmed again, writes succeed.
        fp.disarm();
        fp.write_all(&mut f, b"world\n").unwrap();
        assert_eq!(fs::read(&path).unwrap(), b"hello\nworld\n");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_write_lands_a_prefix() {
        let dir = std::env::temp_dir().join(format!(
            "ringrt-failpoint-torn-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        let fp = FailpointFs::new();
        let path = dir.join("probe.log");
        let mut f = fp.create(&path).unwrap();
        fp.arm(FaultPlan {
            fail_at_op: 2,
            torn_bytes: Some(3),
        });
        assert!(fp.write_all(&mut f, b"abcdef").is_err());
        assert_eq!(fs::read(&path).unwrap(), b"abc");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn injected_errors_are_recognizable() {
        let err = RegistryError::Storage {
            reason: format!("append journal record: {INJECTED_MARKER}"),
        };
        assert!(FailpointFs::is_injected(&err));
        let real = RegistryError::Storage {
            reason: "disk on fire".to_owned(),
        };
        assert!(!FailpointFs::is_injected(&real));
    }
}
