//! The Monte-Carlo average-breakdown-utilization estimator.

use core::fmt;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use ringrt_core::SchedulabilityTest;
use ringrt_exec::Pool;
use ringrt_units::Bandwidth;
use ringrt_workload::MessageSetGenerator;

use crate::{SampleStats, SaturationSearch};

/// Estimates a protocol's average breakdown utilization over a message-set
/// population (paper §6.1).
///
/// Each sample draws a random set, scales it to its saturation boundary,
/// and records the boundary utilization; the estimate is the sample mean
/// with a 95 % confidence interval.
///
/// # Examples
///
/// ```
/// use rand::SeedableRng;
/// use ringrt_breakdown::BreakdownEstimator;
/// use ringrt_core::pdp::{PdpAnalyzer, PdpVariant};
/// use ringrt_model::{FrameFormat, RingConfig};
/// use ringrt_units::Bandwidth;
/// use ringrt_workload::MessageSetGenerator;
///
/// let ring = RingConfig::ieee_802_5(10, Bandwidth::from_mbps(4.0));
/// let analyzer = PdpAnalyzer::new(ring, FrameFormat::paper_default(), PdpVariant::Modified);
/// let est = BreakdownEstimator::new(MessageSetGenerator::paper_population(10), 15)
///     .estimate(&analyzer, ring.bandwidth(), &mut rand::rngs::StdRng::seed_from_u64(1));
/// assert!(est.mean > 0.0 && est.mean < 1.0);
/// assert_eq!(est.stats.count(), 15);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct BreakdownEstimator {
    generator: MessageSetGenerator,
    samples: usize,
    search: SaturationSearch,
}

impl BreakdownEstimator {
    /// Creates an estimator taking `samples` Monte-Carlo samples from
    /// `generator` with the default saturation-search tolerance.
    ///
    /// # Panics
    ///
    /// Panics if `samples` is zero.
    #[must_use]
    pub fn new(generator: MessageSetGenerator, samples: usize) -> Self {
        assert!(samples > 0, "need at least one Monte-Carlo sample");
        BreakdownEstimator {
            generator,
            samples,
            search: SaturationSearch::default(),
        }
    }

    /// Returns a copy with a custom saturation search.
    #[must_use]
    pub fn with_search(mut self, search: SaturationSearch) -> Self {
        self.search = search;
        self
    }

    /// The number of Monte-Carlo samples per estimate.
    #[must_use]
    pub fn samples(&self) -> usize {
        self.samples
    }

    /// The underlying population generator.
    #[must_use]
    pub fn generator(&self) -> &MessageSetGenerator {
        &self.generator
    }

    /// The canonical per-sample seed stream: one word drawn from the
    /// master RNG per sample, decorrelated through the SplitMix64
    /// finalizer. Both the serial and the parallel estimation paths
    /// consume **exactly** this stream, which is what makes them
    /// bit-identical.
    fn sample_seeds<R: Rng + ?Sized>(&self, rng: &mut R) -> Vec<u64> {
        (0..self.samples)
            .map(|_| ringrt_exec::splitmix64(rng.next_u64()))
            .collect()
    }

    /// Draws and saturates sample `k`: its own RNG stream from `seed`,
    /// returning `(breakdown utilization, infeasible?)`.
    fn run_sample<T>(&self, test: &T, bandwidth: Bandwidth, seed: u64) -> (f64, bool)
    where
        T: SchedulabilityTest + ?Sized,
    {
        let mut rng = StdRng::seed_from_u64(seed);
        let set = self.generator.generate(&mut rng);
        match self.search.saturate(test, &set, bandwidth) {
            Some(sat) => (sat.utilization, false),
            None => (0.0, true),
        }
    }

    /// Folds per-sample results (in sample order) into the estimate.
    fn merge<T>(&self, test: &T, samples: &[(f64, bool)]) -> BreakdownEstimate
    where
        T: SchedulabilityTest + ?Sized,
    {
        let mut stats = SampleStats::new();
        let mut infeasible = 0usize;
        for &(u, inf) in samples {
            stats.push(u);
            if inf {
                infeasible += 1;
            }
        }
        BreakdownEstimate {
            protocol: test.protocol_name(),
            mean: stats.mean(),
            ci95: stats.ci95_half_width(),
            infeasible_sets: infeasible,
            stats,
        }
    }

    /// Runs the estimation for one protocol configuration.
    ///
    /// `bandwidth` is used to express sampled boundary utilizations (it
    /// should match the analyzer's ring bandwidth). Sets for which no
    /// positive load is schedulable contribute a **zero** utilization
    /// sample — the protocol genuinely cannot guarantee that population
    /// member — and are additionally counted in
    /// [`BreakdownEstimate::infeasible_sets`].
    ///
    /// Sample `k` runs on its own RNG stream seeded from the `k`-th word
    /// of `rng` (SplitMix64-mixed), so
    /// `estimate(&mut StdRng::seed_from_u64(s))` is **bit-identical** to
    /// [`BreakdownEstimator::estimate_parallel`] with master seed `s` at
    /// any thread count.
    pub fn estimate<T, R>(&self, test: &T, bandwidth: Bandwidth, rng: &mut R) -> BreakdownEstimate
    where
        T: SchedulabilityTest + ?Sized,
        R: Rng + ?Sized,
    {
        let seeds = self.sample_seeds(rng);
        let samples: Vec<(f64, bool)> = seeds
            .iter()
            .map(|&s| self.run_sample(test, bandwidth, s))
            .collect();
        self.merge(test, &samples)
    }

    /// Like [`BreakdownEstimator::estimate`], but scatters the samples
    /// across `pool`'s worker threads.
    ///
    /// **Bit-identical to the serial path at any thread count**: the
    /// per-sample seeds are the same SplitMix64-mixed stream a serial
    /// `estimate(&mut StdRng::seed_from_u64(seed))` consumes, and the
    /// pool returns sample results in index order, so the mean, CI, and
    /// full sample statistics match byte for byte no matter how the
    /// samples interleave across workers.
    pub fn estimate_parallel<T>(
        &self,
        test: &T,
        bandwidth: Bandwidth,
        seed: u64,
        pool: &Pool,
    ) -> BreakdownEstimate
    where
        T: SchedulabilityTest + Sync + ?Sized,
    {
        let mut rng = StdRng::seed_from_u64(seed);
        let seeds = self.sample_seeds(&mut rng);
        let samples = pool.map(self.samples, |k| self.run_sample(test, bandwidth, seeds[k]));
        self.merge(test, &samples)
    }
}

/// The result of one average-breakdown-utilization estimation.
#[derive(Debug, Clone, PartialEq)]
pub struct BreakdownEstimate {
    /// Name of the protocol configuration that was estimated.
    pub protocol: &'static str,
    /// Estimated average breakdown utilization.
    pub mean: f64,
    /// Half-width of the 95 % confidence interval.
    pub ci95: f64,
    /// Number of sampled sets for which no positive load was schedulable
    /// (each contributed a zero sample).
    pub infeasible_sets: usize,
    /// Full sample statistics (count, variance, extremes).
    pub stats: SampleStats,
}

impl fmt::Display for BreakdownEstimate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: ABU = {:.4} ± {:.4} ({} samples",
            self.protocol,
            self.mean,
            self.ci95,
            self.stats.count()
        )?;
        if self.infeasible_sets > 0 {
            write!(f, ", {} infeasible", self.infeasible_sets)?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use ringrt_core::pdp::{PdpAnalyzer, PdpVariant};
    use ringrt_core::ttp::{TtpAnalyzer, TtrtPolicy};
    use ringrt_model::{FrameFormat, RingConfig};
    use ringrt_units::Seconds;

    fn quick_estimator(n: usize) -> BreakdownEstimator {
        BreakdownEstimator::new(MessageSetGenerator::paper_population(n), 8)
            .with_search(SaturationSearch::with_tolerance(1e-3))
    }

    #[test]
    fn ttp_estimate_in_sane_band_at_100mbps() {
        let ring = RingConfig::fddi(20, Bandwidth::from_mbps(100.0));
        let a = TtpAnalyzer::with_defaults(ring);
        let est = quick_estimator(20).estimate(&a, ring.bandwidth(), &mut StdRng::seed_from_u64(2));
        assert!(est.mean > 0.4 && est.mean < 1.0, "ABU {est}");
        assert_eq!(est.infeasible_sets, 0);
        assert_eq!(est.protocol, "FDDI");
    }

    #[test]
    fn pdp_estimate_in_sane_band_at_4mbps() {
        let ring = RingConfig::ieee_802_5(20, Bandwidth::from_mbps(4.0));
        let a = PdpAnalyzer::new(ring, FrameFormat::paper_default(), PdpVariant::Modified);
        let est = quick_estimator(20).estimate(&a, ring.bandwidth(), &mut StdRng::seed_from_u64(3));
        assert!(est.mean > 0.2 && est.mean < 1.0, "ABU {est}");
    }

    #[test]
    fn reproducible_with_same_seed() {
        let ring = RingConfig::fddi(10, Bandwidth::from_mbps(100.0));
        let a = TtpAnalyzer::with_defaults(ring);
        let e = quick_estimator(10);
        let x = e.estimate(&a, ring.bandwidth(), &mut StdRng::seed_from_u64(7));
        let y = e.estimate(&a, ring.bandwidth(), &mut StdRng::seed_from_u64(7));
        assert_eq!(x, y);
    }

    #[test]
    fn infeasible_population_scores_zero() {
        // A TTRT fixed way above P_min/2 makes every set infeasible.
        let ring = RingConfig::fddi(10, Bandwidth::from_mbps(100.0));
        let a = TtpAnalyzer::with_defaults(ring)
            .with_ttrt_policy(TtrtPolicy::Fixed(Seconds::from_millis(500.0)));
        let est = quick_estimator(10).estimate(&a, ring.bandwidth(), &mut StdRng::seed_from_u64(9));
        assert_eq!(est.infeasible_sets, 8);
        assert_eq!(est.mean, 0.0);
        assert!(est.to_string().contains("infeasible"));
    }

    #[test]
    fn parallel_is_bit_identical_across_thread_counts() {
        let ring = RingConfig::fddi(10, Bandwidth::from_mbps(100.0));
        let a = TtpAnalyzer::with_defaults(ring);
        let e = BreakdownEstimator::new(MessageSetGenerator::paper_population(10), 9)
            .with_search(SaturationSearch::with_tolerance(1e-3));
        let one = e.estimate_parallel(&a, ring.bandwidth(), 42, &Pool::serial());
        let four = e.estimate_parallel(&a, ring.bandwidth(), 42, &Pool::new(4));
        let many = e.estimate_parallel(&a, ring.bandwidth(), 42, &Pool::new(16));
        assert_eq!(one.stats.count(), 9);
        assert_eq!(one, four);
        assert_eq!(one, many);
        // A different seed gives a different (but valid) estimate.
        let other = e.estimate_parallel(&a, ring.bandwidth(), 43, &Pool::new(4));
        assert_ne!(one.mean, other.mean);
    }

    #[test]
    fn parallel_is_bit_identical_to_serial_estimate() {
        let ring = RingConfig::fddi(10, Bandwidth::from_mbps(100.0));
        let a = TtpAnalyzer::with_defaults(ring);
        let e = BreakdownEstimator::new(MessageSetGenerator::paper_population(10), 16)
            .with_search(SaturationSearch::with_tolerance(1e-3));
        let seq = e.estimate(&a, ring.bandwidth(), &mut StdRng::seed_from_u64(7));
        let par = e.estimate_parallel(&a, ring.bandwidth(), 7, &Pool::new(4));
        // Same canonical seed stream, merged in sample order: byte-equal.
        assert_eq!(seq, par);
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn zero_samples_rejected() {
        let _ = BreakdownEstimator::new(MessageSetGenerator::paper_population(5), 0);
    }

    #[test]
    fn accessors() {
        let e = quick_estimator(5);
        assert_eq!(e.samples(), 8);
        assert_eq!(e.generator().stations(), 5);
    }
}
