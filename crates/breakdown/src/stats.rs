//! Streaming sample statistics (Welford's algorithm).

use core::fmt;

/// Running mean/variance accumulator for Monte-Carlo samples.
///
/// Uses Welford's numerically stable one-pass update.
///
/// # Examples
///
/// ```
/// use ringrt_breakdown::SampleStats;
///
/// let mut stats = SampleStats::new();
/// for x in [1.0, 2.0, 3.0, 4.0] {
///     stats.push(x);
/// }
/// assert_eq!(stats.count(), 4);
/// assert!((stats.mean() - 2.5).abs() < 1e-12);
/// assert!((stats.variance() - 5.0 / 3.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct SampleStats {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl SampleStats {
    /// Creates an empty accumulator.
    #[must_use]
    pub fn new() -> Self {
        SampleStats {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one sample.
    ///
    /// # Panics
    ///
    /// Panics if `x` is NaN.
    pub fn push(&mut self, x: f64) {
        assert!(!x.is_nan(), "samples must not be NaN");
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of samples seen.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sample mean (0 for an empty accumulator).
    #[must_use]
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Unbiased sample variance (0 with fewer than two samples).
    #[must_use]
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    /// Sample standard deviation.
    #[must_use]
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Standard error of the mean.
    #[must_use]
    pub fn std_error(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.std_dev() / (self.count as f64).sqrt()
        }
    }

    /// Half-width of the normal-approximation 95 % confidence interval of
    /// the mean.
    #[must_use]
    pub fn ci95_half_width(&self) -> f64 {
        1.959_963_985 * self.std_error()
    }

    /// Smallest sample (∞ for an empty accumulator).
    #[must_use]
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest sample (−∞ for an empty accumulator).
    #[must_use]
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Merges another accumulator into this one (parallel Welford).
    pub fn merge(&mut self, other: &SampleStats) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let total = self.count + other.count;
        let delta = other.mean - self.mean;
        self.mean += delta * other.count as f64 / total as f64;
        self.m2 +=
            other.m2 + delta * delta * (self.count as f64 * other.count as f64) / total as f64;
        self.count = total;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

impl fmt::Display for SampleStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "n = {}, mean = {:.6} ± {:.6} (95 % CI), σ = {:.6}",
            self.count,
            self.mean,
            self.ci95_half_width(),
            self.std_dev()
        )
    }
}

impl Extend<f64> for SampleStats {
    fn extend<T: IntoIterator<Item = f64>>(&mut self, iter: T) {
        for x in iter {
            self.push(x);
        }
    }
}

impl FromIterator<f64> for SampleStats {
    fn from_iter<T: IntoIterator<Item = f64>>(iter: T) -> Self {
        let mut s = SampleStats::new();
        s.extend(iter);
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_stats() {
        let s = SampleStats::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.std_error(), 0.0);
    }

    #[test]
    fn known_moments() {
        let s: SampleStats = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]
            .into_iter()
            .collect();
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        // Population variance 4 → sample variance 32/7.
        assert!((s.variance() - 32.0 / 7.0).abs() < 1e-12);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
    }

    #[test]
    fn merge_equals_sequential() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 3.0 + 5.0).collect();
        let seq: SampleStats = xs.iter().copied().collect();
        let mut a: SampleStats = xs[..37].iter().copied().collect();
        let b: SampleStats = xs[37..].iter().copied().collect();
        a.merge(&b);
        assert_eq!(a.count(), seq.count());
        assert!((a.mean() - seq.mean()).abs() < 1e-12);
        assert!((a.variance() - seq.variance()).abs() < 1e-10);
        assert_eq!(a.min(), seq.min());
        assert_eq!(a.max(), seq.max());
    }

    #[test]
    fn merge_with_empty_sides() {
        let mut empty = SampleStats::new();
        let full: SampleStats = [1.0, 2.0].into_iter().collect();
        empty.merge(&full);
        assert_eq!(empty.count(), 2);
        let mut full2 = full;
        full2.merge(&SampleStats::new());
        assert_eq!(full2.count(), 2);
    }

    #[test]
    fn ci_shrinks_with_samples() {
        let small: SampleStats = (0..10).map(|i| i as f64 % 3.0).collect();
        let large: SampleStats = (0..1000).map(|i| i as f64 % 3.0).collect();
        assert!(large.ci95_half_width() < small.ci95_half_width());
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn nan_rejected() {
        SampleStats::new().push(f64::NAN);
    }

    #[test]
    fn display() {
        let s: SampleStats = [1.0, 2.0, 3.0].into_iter().collect();
        let text = s.to_string();
        assert!(text.contains("n = 3"));
        assert!(text.contains("mean = 2.0"));
    }
}
