//! Criterion benchmarks of the substrate crates: frame codecs, the event
//! queue, and statistics — the inner loops under the simulators.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;

use ringrt_des::stats::DurationHistogram;
use ringrt_des::EventQueue;
use ringrt_frames::crc::crc32;
use ringrt_frames::ieee8025::{AccessControl, DataFrame, Priority};
use ringrt_units::{SimDuration, SimTime};

fn bench_crc32(c: &mut Criterion) {
    let mut group = c.benchmark_group("crc32");
    for size in [64usize, 1500, 65536] {
        let data: Vec<u8> = (0..size).map(|i| i as u8).collect();
        group.throughput(Throughput::Bytes(size as u64));
        group.bench_function(format!("{size}B"), |b| {
            b.iter(|| black_box(crc32(black_box(&data))))
        });
    }
    group.finish();
}

fn bench_frame_codec(c: &mut Criterion) {
    let mut group = c.benchmark_group("ieee8025_codec");
    let ac = AccessControl::frame(Priority::new(5).unwrap(), Priority::new(0).unwrap());
    let frame = DataFrame::new(ac, [1; 6], [2; 6], vec![0xAB; 64]);
    let wire = frame.encode();
    group.bench_function("encode_64B", |b| b.iter(|| black_box(frame.encode())));
    group.bench_function("decode_64B", |b| {
        b.iter(|| black_box(DataFrame::decode(black_box(&wire)).unwrap()))
    });
    group.finish();
}

fn bench_event_queue(c: &mut Criterion) {
    let mut group = c.benchmark_group("event_queue");
    group.bench_function("push_pop_10k", |b| {
        b.iter(|| {
            let mut q = EventQueue::new();
            // Deterministic pseudo-random times via an LCG.
            let mut x = 0x2545_F491_4F6C_DD1Du64;
            for i in 0..10_000u64 {
                x = x
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                q.schedule_at(SimTime::from_picos(x >> 20), i);
            }
            let mut sum = 0u64;
            while let Some((_, e)) = q.pop() {
                sum = sum.wrapping_add(e);
            }
            black_box(sum)
        })
    });
    group.finish();
}

fn bench_histogram(c: &mut Criterion) {
    let mut group = c.benchmark_group("duration_histogram");
    group.bench_function("push_100k_quantile", |b| {
        b.iter(|| {
            let mut h = DurationHistogram::new();
            for i in 1..=100_000u64 {
                h.push(SimDuration::from_picos(i * 7919));
            }
            black_box(h.quantile(0.99))
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_crc32,
    bench_frame_codec,
    bench_event_queue,
    bench_histogram
);
criterion_main!(benches);
