//! Synchronous message-set generation for the `ringrt` experiments.
//!
//! The Monte-Carlo breakdown-utilization methodology (paper §6.1, following
//! Lehoczky–Sha–Ding) needs a stream of random message sets drawn from a
//! parameterized population:
//!
//! * **periods** from a distribution — the paper uses a uniform
//!   distribution described by its *mean* and *max/min ratio* (100 ms and
//!   10 in the reported experiments);
//! * **lengths** whose absolute scale is irrelevant (the saturation search
//!   rescales them) but whose *relative shape* defines the population.
//!
//! [`MessageSetGenerator`] combines a [`PeriodDistribution`] and a
//! [`LengthShape`] into a reproducible, seedable generator. The
//! [`scenarios`] module provides deterministic message sets for examples
//! and integration tests.
//!
//! # Examples
//!
//! ```
//! use rand::SeedableRng;
//! use ringrt_workload::{MessageSetGenerator, PeriodDistribution};
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(7);
//! let gen = MessageSetGenerator::paper_population(100);
//! let set = gen.generate(&mut rng);
//! assert_eq!(set.len(), 100);
//! // Periods honour the max/min ratio of 10 (up to sampling luck).
//! assert!(set.max_period() / set.min_period() <= 10.0 + 1e-9);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod scenarios;

mod generator;
mod length;
mod period;

pub use generator::MessageSetGenerator;
pub use length::LengthShape;
pub use period::PeriodDistribution;
