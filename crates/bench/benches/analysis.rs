//! Criterion micro-benchmarks of the schedulability machinery: these are
//! the kernels the Monte-Carlo sweeps call millions of times, so their
//! throughput bounds every experiment's wall-clock time.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use rand::rngs::StdRng;
use rand::SeedableRng;

use ringrt_breakdown::SaturationSearch;
use ringrt_core::pdp::{PdpAnalyzer, PdpVariant};
use ringrt_core::ttp::TtpAnalyzer;
use ringrt_core::SchedulabilityTest;
use ringrt_model::{FrameFormat, MessageSet, RingConfig};
use ringrt_units::Bandwidth;
use ringrt_workload::MessageSetGenerator;

fn sample_set(stations: usize, seed: u64) -> MessageSet {
    MessageSetGenerator::paper_population(stations)
        .generate(&mut StdRng::seed_from_u64(seed))
        // Half the initial utilization: a typically-schedulable load.
        .with_scaled_lengths(0.4)
}

fn bench_pdp_test(c: &mut Criterion) {
    let mut group = c.benchmark_group("pdp_is_schedulable");
    group.sample_size(30);
    for &n in &[10usize, 50, 100] {
        let set = sample_set(n, 7);
        let ring = RingConfig::ieee_802_5(n, Bandwidth::from_mbps(4.0));
        let analyzer = PdpAnalyzer::new(ring, FrameFormat::paper_default(), PdpVariant::Modified);
        group.bench_with_input(BenchmarkId::new("rta", n), &set, |b, set| {
            b.iter(|| black_box(analyzer.is_schedulable(black_box(set))))
        });
        group.bench_with_input(BenchmarkId::new("scheduling_points", n), &set, |b, set| {
            b.iter(|| black_box(analyzer.is_schedulable_by_points(black_box(set))))
        });
    }
    group.finish();
}

fn bench_ttp_test(c: &mut Criterion) {
    let mut group = c.benchmark_group("ttp_is_schedulable");
    group.sample_size(50);
    for &n in &[10usize, 100] {
        let set = sample_set(n, 8);
        let ring = RingConfig::fddi(n, Bandwidth::from_mbps(100.0));
        let analyzer = TtpAnalyzer::with_defaults(ring);
        group.bench_with_input(BenchmarkId::new("theorem_5_1", n), &set, |b, set| {
            b.iter(|| black_box(analyzer.is_schedulable(black_box(set))))
        });
    }
    group.finish();
}

fn bench_saturation(c: &mut Criterion) {
    let mut group = c.benchmark_group("saturation_search");
    group.sample_size(10);
    let n = 50;
    let set = sample_set(n, 9);
    let search = SaturationSearch::with_tolerance(1e-3);

    let bw = Bandwidth::from_mbps(100.0);
    let fddi = TtpAnalyzer::with_defaults(RingConfig::fddi(n, bw));
    group.bench_function("ttp_100mbps_n50", |b| {
        b.iter(|| black_box(search.saturate(&fddi, black_box(&set), bw)))
    });

    let bw = Bandwidth::from_mbps(4.0);
    let pdp = PdpAnalyzer::new(
        RingConfig::ieee_802_5(n, bw),
        FrameFormat::paper_default(),
        PdpVariant::Modified,
    );
    group.bench_function("pdp_4mbps_n50", |b| {
        b.iter(|| black_box(search.saturate(&pdp, black_box(&set), bw)))
    });
    group.finish();
}

criterion_group!(benches, bench_pdp_test, bench_ttp_test, bench_saturation);
criterion_main!(benches);
