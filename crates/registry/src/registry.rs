//! The registry proper: a thread-safe named-ring store with journaled
//! persistence and incremental admission control.

use std::collections::BTreeMap;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use ringrt_model::SyncStream;

use crate::engine::{self, CheckOutcome, TtpCache};
use crate::journal::{JournalOp, ReplayStats, Store};
use crate::spec::{validate_name, NamedStream, RegistryError, RingSpec, RingState};

/// One ring plus the derived analysis state that never touches disk.
#[derive(Debug)]
struct RingEntry {
    state: RingState,
    /// Cached Theorem 5.1 terms (TTP rings only); rebuilt lazily.
    ttp_cache: Option<TtpCache>,
    /// Mutation generation: the value of the registry-wide counter at this
    /// ring's last mutation. Globally unique across rings *and* across
    /// unregister/re-register cycles, so anything keyed by
    /// `(ring, generation)` — the service's result cache, most notably —
    /// can never confuse two distinct states of the same ring name.
    generation: u64,
}

#[derive(Debug)]
struct Inner {
    rings: BTreeMap<String, RingEntry>,
    /// `None` for a purely in-memory registry (tests, ephemeral servers).
    store: Option<Store>,
    /// Registry-wide mutation counter backing [`RingEntry::generation`];
    /// bumped on **every** committed mutation, including `UNREGISTER`.
    generation: u64,
}

/// Work counters proving the incremental path's savings; exposed via
/// `STATS` and [`RingRegistry::metrics`].
#[derive(Debug, Default)]
struct Counters {
    incremental_tests: AtomicU64,
    full_tests: AtomicU64,
    incremental_evaluations: AtomicU64,
    full_evaluations: AtomicU64,
}

/// A persistent, thread-safe store of named rings and their admitted
/// streams, with incremental Theorem 4.1/5.1 re-analysis on every
/// mutation.
///
/// All mutations are journaled **before** they touch memory, so the
/// in-memory map never runs ahead of what a crash would recover.
#[derive(Debug)]
pub struct RingRegistry {
    inner: Mutex<Inner>,
    counters: Counters,
    replay: Option<ReplayStats>,
}

/// Result of an `ADMIT`/`REMOVE` call: the verdict plus ring bookkeeping.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AdmissionOutcome {
    /// The schedulability verdict (for `REMOVE`: of the remaining set).
    pub check: CheckOutcome,
    /// Whether the mutation was applied (rejected admits are not).
    pub applied: bool,
    /// Streams in the ring after the call.
    pub streams: usize,
}

/// Result of a full `CHECK ring=…` re-analysis.
#[derive(Debug, Clone, PartialEq)]
pub struct RingCheck {
    /// Whether the stored set is schedulable.
    pub schedulable: bool,
    /// Scheduling-point evaluations the full test performed.
    pub evaluations: u64,
    /// The ring's spec.
    pub spec: RingSpec,
    /// Number of admitted streams.
    pub streams: usize,
    /// Synchronous utilization of the stored set on this ring.
    pub utilization: f64,
}

/// Point-in-time registry gauges for `STATS` and the metrics endpoint.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RegistryMetrics {
    /// Registered rings.
    pub rings: usize,
    /// Admitted streams across all rings.
    pub streams: usize,
    /// Current journal size in bytes.
    pub journal_bytes: u64,
    /// Current snapshot size in bytes.
    pub snapshot_bytes: u64,
    /// Startup recovery time in milliseconds.
    pub replay_ms: f64,
    /// Streams restored by startup recovery.
    pub replayed_streams: usize,
    /// Admission checks that took the incremental path.
    pub incremental_tests: u64,
    /// Admission checks that recomputed from scratch.
    pub full_tests: u64,
    /// Evaluations spent on incremental checks.
    pub incremental_evaluations: u64,
    /// Evaluations spent on full checks.
    pub full_evaluations: u64,
}

impl RingRegistry {
    /// A registry with no backing store; state dies with the process.
    #[must_use]
    pub fn in_memory() -> Self {
        RingRegistry {
            inner: Mutex::new(Inner {
                rings: BTreeMap::new(),
                store: None,
                generation: 0,
            }),
            counters: Counters::default(),
            replay: None,
        }
    }

    /// Opens (creating if needed) a journaled registry in `dir`, replaying
    /// any persisted state.
    ///
    /// # Errors
    ///
    /// [`RegistryError::Storage`] if the directory cannot be opened or the
    /// journal replays inconsistently.
    pub fn open(dir: &Path) -> Result<Self, RegistryError> {
        let (store, rings, replay) = Store::open(dir)?;
        // Replayed rings get fresh, distinct generations; the counter starts
        // past them so post-recovery mutations never reuse one.
        let mut generation = 0u64;
        let rings = rings
            .into_iter()
            .map(|(name, state)| {
                generation += 1;
                (
                    name,
                    RingEntry {
                        state,
                        ttp_cache: None,
                        generation,
                    },
                )
            })
            .collect();
        Ok(RingRegistry {
            inner: Mutex::new(Inner {
                rings,
                store: Some(store),
                generation,
            }),
            counters: Counters::default(),
            replay: Some(replay),
        })
    }

    /// What startup recovery found, if this registry is persistent.
    #[must_use]
    pub fn replay_stats(&self) -> Option<&ReplayStats> {
        self.replay.as_ref()
    }

    /// Attaches a flight recorder to the backing store (no-op for
    /// in-memory registries): journal appends, fsyncs, and compaction
    /// phases then emit `registry` spans.
    pub fn attach_recorder(&self, recorder: std::sync::Arc<ringrt_obs::Recorder>) {
        if let Some(store) = self.lock().store.as_mut() {
            store.set_recorder(recorder);
        }
    }

    /// Zeroes the incremental/full admission-test counters (the gauges —
    /// ring, stream, and byte counts — are live state and are unaffected).
    /// Backs the service's `STATS RESET` command.
    pub fn reset_counters(&self) {
        self.counters.incremental_tests.store(0, Ordering::Relaxed);
        self.counters.full_tests.store(0, Ordering::Relaxed);
        self.counters
            .incremental_evaluations
            .store(0, Ordering::Relaxed);
        self.counters.full_evaluations.store(0, Ordering::Relaxed);
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        self.inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Journals `op` (if persistent), then applies it to `rings`. The
    /// journal write happens first so memory never runs ahead of disk.
    fn commit(inner: &mut Inner, op: &JournalOp) -> Result<(), RegistryError> {
        if let Some(store) = inner.store.as_mut() {
            store.append(op)?;
        }
        inner.generation += 1;
        let generation = inner.generation;
        match op {
            JournalOp::Register { ring, spec } => {
                inner.rings.insert(
                    ring.clone(),
                    RingEntry {
                        state: RingState {
                            spec: *spec,
                            streams: Vec::new(),
                        },
                        ttp_cache: None,
                        generation,
                    },
                );
            }
            JournalOp::Admit { ring, stream } => {
                let entry = inner.rings.get_mut(ring).expect("caller validated ring");
                entry.state.streams.push(stream.clone());
                entry.generation = generation;
            }
            JournalOp::Remove { ring, stream } => {
                let entry = inner.rings.get_mut(ring).expect("caller validated ring");
                let idx = entry
                    .state
                    .stream_index(stream)
                    .expect("caller validated stream");
                entry.state.streams.remove(idx);
                entry.generation = generation;
            }
            JournalOp::Unregister { ring } => {
                inner.rings.remove(ring);
            }
        }
        Ok(())
    }

    fn record(&self, check: &CheckOutcome) {
        if check.incremental {
            self.counters
                .incremental_tests
                .fetch_add(1, Ordering::Relaxed);
            self.counters
                .incremental_evaluations
                .fetch_add(check.evaluations, Ordering::Relaxed);
        } else {
            self.counters.full_tests.fetch_add(1, Ordering::Relaxed);
            self.counters
                .full_evaluations
                .fetch_add(check.evaluations, Ordering::Relaxed);
        }
    }

    /// Registers a new, empty ring.
    ///
    /// # Errors
    ///
    /// Invalid names/specs, duplicate rings, or storage failures.
    pub fn register(&self, ring: &str, spec: RingSpec) -> Result<(), RegistryError> {
        validate_name(ring)?;
        spec.validate()?;
        let mut inner = self.lock();
        if inner.rings.contains_key(ring) {
            return Err(RegistryError::DuplicateRing {
                ring: ring.to_owned(),
            });
        }
        Self::commit(
            &mut inner,
            &JournalOp::Register {
                ring: ring.to_owned(),
                spec,
            },
        )
    }

    /// Drops a ring and all its streams.
    ///
    /// # Errors
    ///
    /// [`RegistryError::UnknownRing`] or storage failures.
    pub fn unregister(&self, ring: &str) -> Result<(), RegistryError> {
        let mut inner = self.lock();
        if !inner.rings.contains_key(ring) {
            return Err(RegistryError::UnknownRing {
                ring: ring.to_owned(),
            });
        }
        Self::commit(
            &mut inner,
            &JournalOp::Unregister {
                ring: ring.to_owned(),
            },
        )
    }

    /// Runs the admission test for `stream` on `ring` and, if it passes,
    /// admits it (journaled). A rejected stream leaves the ring untouched
    /// and is **not** journaled.
    ///
    /// # Errors
    ///
    /// Unknown ring, duplicate stream name, invalid name, or storage
    /// failure. A schedulability rejection is **not** an error — it is an
    /// [`AdmissionOutcome`] with `applied == false`.
    pub fn admit(
        &self,
        ring: &str,
        name: &str,
        stream: SyncStream,
    ) -> Result<AdmissionOutcome, RegistryError> {
        validate_name(name)?;
        let mut inner = self.lock();
        let entry = inner
            .rings
            .get(ring)
            .ok_or_else(|| RegistryError::UnknownRing {
                ring: ring.to_owned(),
            })?;
        if entry.state.stream_index(name).is_some() {
            return Err(RegistryError::DuplicateStream {
                ring: ring.to_owned(),
                stream: name.to_owned(),
            });
        }
        let old_len = entry.state.streams.len();
        let mut candidate = entry.state.clone();
        candidate.streams.push(NamedStream {
            name: name.to_owned(),
            stream,
        });
        let new_set = candidate.message_set().expect("set has the candidate");
        let (check, new_cache) =
            engine::admit_check(&candidate.spec, entry.ttp_cache.as_ref(), old_len, &new_set);
        self.record(&check);
        if !check.schedulable {
            return Ok(AdmissionOutcome {
                check,
                applied: false,
                streams: old_len,
            });
        }
        Self::commit(
            &mut inner,
            &JournalOp::Admit {
                ring: ring.to_owned(),
                stream: NamedStream {
                    name: name.to_owned(),
                    stream,
                },
            },
        )?;
        let entry = inner.rings.get_mut(ring).expect("just committed");
        entry.ttp_cache = new_cache;
        Ok(AdmissionOutcome {
            check,
            applied: true,
            streams: old_len + 1,
        })
    }

    /// Removes a stream (always applied) and reports the remaining set's
    /// verdict — which for TTP can flip to unschedulable if the departure
    /// renegotiates the TTRT.
    ///
    /// # Errors
    ///
    /// Unknown ring or stream, or storage failure.
    pub fn remove(&self, ring: &str, name: &str) -> Result<AdmissionOutcome, RegistryError> {
        let mut inner = self.lock();
        let entry = inner
            .rings
            .get(ring)
            .ok_or_else(|| RegistryError::UnknownRing {
                ring: ring.to_owned(),
            })?;
        let index = entry
            .state
            .stream_index(name)
            .ok_or_else(|| RegistryError::UnknownStream {
                ring: ring.to_owned(),
                stream: name.to_owned(),
            })?;
        let old_len = entry.state.streams.len();
        let mut remaining = entry.state.clone();
        remaining.streams.remove(index);
        let new_set = remaining.message_set();
        let (check, new_cache) = engine::remove_check(
            &remaining.spec,
            entry.ttp_cache.as_ref(),
            index,
            old_len,
            new_set.as_ref(),
        );
        self.record(&check);
        Self::commit(
            &mut inner,
            &JournalOp::Remove {
                ring: ring.to_owned(),
                stream: name.to_owned(),
            },
        )?;
        let entry = inner.rings.get_mut(ring).expect("just committed");
        entry.ttp_cache = new_cache;
        Ok(AdmissionOutcome {
            check,
            applied: true,
            streams: old_len - 1,
        })
    }

    /// Runs the full (non-incremental) test on a ring's stored set —
    /// the baseline `ADMIT` is measured against. Refreshes the ring's
    /// term cache as a side effect.
    ///
    /// # Errors
    ///
    /// Unknown or empty ring.
    pub fn check_full(&self, ring: &str) -> Result<RingCheck, RegistryError> {
        let mut inner = self.lock();
        let entry = inner
            .rings
            .get_mut(ring)
            .ok_or_else(|| RegistryError::UnknownRing {
                ring: ring.to_owned(),
            })?;
        let set = entry
            .state
            .message_set()
            .ok_or_else(|| RegistryError::EmptyRing {
                ring: ring.to_owned(),
            })?;
        let (check, cache) = engine::full_check(&entry.state.spec, &set);
        entry.ttp_cache = cache;
        self.record(&check);
        let spec = entry.state.spec;
        Ok(RingCheck {
            schedulable: check.schedulable,
            evaluations: check.evaluations,
            spec,
            streams: set.len(),
            utilization: set.utilization(spec.bandwidth()),
        })
    }

    /// Names of all registered rings, sorted.
    #[must_use]
    pub fn ring_names(&self) -> Vec<String> {
        self.lock().rings.keys().cloned().collect()
    }

    /// A snapshot of one ring's state.
    ///
    /// # Errors
    ///
    /// [`RegistryError::UnknownRing`].
    pub fn ring_state(&self, ring: &str) -> Result<RingState, RegistryError> {
        self.ring_snapshot(ring).map(|(state, _)| state)
    }

    /// A snapshot of one ring's state together with its **mutation
    /// generation** — a registry-wide counter value assigned at the ring's
    /// last mutation (`REGISTER`/`ADMIT`/`REMOVE`). The generation changes
    /// on every mutation and is never reused, not even by an
    /// unregister/re-register cycle under the same name, so
    /// `(ring, generation)` keys derived caches that go stale exactly when
    /// the ring actually changed.
    ///
    /// # Errors
    ///
    /// [`RegistryError::UnknownRing`].
    pub fn ring_snapshot(&self, ring: &str) -> Result<(RingState, u64), RegistryError> {
        self.lock()
            .rings
            .get(ring)
            .map(|e| (e.state.clone(), e.generation))
            .ok_or_else(|| RegistryError::UnknownRing {
                ring: ring.to_owned(),
            })
    }

    /// Compacts the journal into a snapshot. A no-op for in-memory
    /// registries.
    ///
    /// # Errors
    ///
    /// Storage failures from the snapshot write or journal truncation.
    pub fn compact(&self) -> Result<(), RegistryError> {
        let mut inner = self.lock();
        let Inner { rings, store, .. } = &mut *inner;
        if let Some(store) = store.as_mut() {
            store.compact(rings.iter().map(|(name, entry)| (name, &entry.state)))?;
        }
        Ok(())
    }

    /// Current gauges and counters.
    #[must_use]
    pub fn metrics(&self) -> RegistryMetrics {
        let inner = self.lock();
        let (journal_bytes, snapshot_bytes) = inner
            .store
            .as_ref()
            .map_or((0, 0), |s| (s.journal_bytes(), s.snapshot_bytes()));
        RegistryMetrics {
            rings: inner.rings.len(),
            streams: inner.rings.values().map(|e| e.state.streams.len()).sum(),
            journal_bytes,
            snapshot_bytes,
            replay_ms: self
                .replay
                .as_ref()
                .map_or(0.0, |r| r.replay.as_secs_f64() * 1e3),
            replayed_streams: self.replay.as_ref().map_or(0, |r| r.streams_restored),
            incremental_tests: self.counters.incremental_tests.load(Ordering::Relaxed),
            full_tests: self.counters.full_tests.load(Ordering::Relaxed),
            incremental_evaluations: self
                .counters
                .incremental_evaluations
                .load(Ordering::Relaxed),
            full_evaluations: self.counters.full_evaluations.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::ProtocolKind;
    use ringrt_units::{Bits, Seconds};

    fn stream(period_ms: f64, bits: u64) -> SyncStream {
        SyncStream::new(Seconds::from_millis(period_ms), Bits::new(bits))
    }

    fn fddi_spec() -> RingSpec {
        RingSpec {
            protocol: ProtocolKind::Fddi,
            mbps: 100.0,
            stations: Some(16),
        }
    }

    #[test]
    fn register_admit_remove_lifecycle() {
        let reg = RingRegistry::in_memory();
        reg.register("lab", fddi_spec()).unwrap();
        assert!(matches!(
            reg.register("lab", fddi_spec()),
            Err(RegistryError::DuplicateRing { .. })
        ));
        let out = reg.admit("lab", "cam", stream(20.0, 100_000)).unwrap();
        assert!(out.applied && out.check.schedulable);
        assert_eq!(out.streams, 1);
        assert!(matches!(
            reg.admit("lab", "cam", stream(30.0, 1_000)),
            Err(RegistryError::DuplicateStream { .. })
        ));
        let out = reg.admit("lab", "mic", stream(50.0, 200_000)).unwrap();
        assert!(out.applied);
        assert!(out.check.incremental, "second admit should be incremental");
        let rm = reg.remove("lab", "cam").unwrap();
        assert_eq!(rm.streams, 1);
        assert!(matches!(
            reg.remove("lab", "cam"),
            Err(RegistryError::UnknownStream { .. })
        ));
        reg.unregister("lab").unwrap();
        assert!(reg.ring_names().is_empty());
    }

    #[test]
    fn rejected_admit_leaves_ring_untouched() {
        let reg = RingRegistry::in_memory();
        reg.register("r", fddi_spec()).unwrap();
        reg.admit("r", "a", stream(20.0, 100_000)).unwrap();
        // A hog far beyond ring capacity.
        let out = reg.admit("r", "hog", stream(100.0, 12_000_000)).unwrap();
        assert!(!out.applied && !out.check.schedulable);
        assert_eq!(out.streams, 1);
        assert!(reg.ring_state("r").unwrap().stream_index("hog").is_none());
        // The ring still accepts reasonable streams afterwards.
        assert!(reg.admit("r", "b", stream(50.0, 100_000)).unwrap().applied);
    }

    #[test]
    fn counters_track_incremental_vs_full() {
        let reg = RingRegistry::in_memory();
        reg.register("r", fddi_spec()).unwrap();
        reg.admit("r", "s0", stream(20.0, 50_000)).unwrap(); // full (empty ring)
        reg.admit("r", "s1", stream(40.0, 50_000)).unwrap(); // incremental
        reg.admit("r", "s2", stream(80.0, 50_000)).unwrap(); // incremental
        reg.check_full("r").unwrap(); // full
        let m = reg.metrics();
        assert_eq!(m.incremental_tests, 2);
        assert_eq!(m.full_tests, 2);
        assert!(m.incremental_evaluations < m.full_evaluations);
        assert_eq!(m.rings, 1);
        assert_eq!(m.streams, 3);
    }

    #[test]
    fn persistent_registry_survives_reopen() {
        let dir = std::env::temp_dir().join(format!(
            "ringrt-registry-test-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        {
            let reg = RingRegistry::open(&dir).unwrap();
            reg.register("lab", fddi_spec()).unwrap();
            reg.admit("lab", "cam", stream(20.0, 100_000)).unwrap();
            reg.admit("lab", "mic", stream(50.0, 200_000)).unwrap();
            let out = reg.admit("lab", "hog", stream(100.0, 12_000_000)).unwrap();
            assert!(!out.applied); // must NOT reappear after reopen
        }
        let reg = RingRegistry::open(&dir).unwrap();
        let state = reg.ring_state("lab").unwrap();
        assert_eq!(state.streams.len(), 2);
        assert!(state.stream_index("hog").is_none());
        let stats = reg.replay_stats().unwrap();
        assert_eq!(stats.streams_restored, 2);
        // Compact, reopen again: identical state from the snapshot alone.
        reg.compact().unwrap();
        drop(reg);
        let reg = RingRegistry::open(&dir).unwrap();
        assert_eq!(reg.ring_state("lab").unwrap(), state);
        assert_eq!(reg.replay_stats().unwrap().records_applied, 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn generation_bumps_on_every_mutation() {
        let reg = RingRegistry::in_memory();
        reg.register("r", fddi_spec()).unwrap();
        let (_, g0) = reg.ring_snapshot("r").unwrap();
        reg.admit("r", "a", stream(20.0, 100_000)).unwrap();
        let (_, g1) = reg.ring_snapshot("r").unwrap();
        assert!(g1 > g0);
        reg.remove("r", "a").unwrap();
        let (_, g2) = reg.ring_snapshot("r").unwrap();
        assert!(g2 > g1);
        // A rejected admit mutates nothing, so the generation holds still.
        reg.admit("r", "hog", stream(100.0, 12_000_000)).unwrap();
        reg.admit("r", "ok", stream(20.0, 100_000)).unwrap();
        let hog = reg.admit("r", "hog2", stream(100.0, 12_000_000)).unwrap();
        assert!(!hog.applied);
        let (_, g3) = reg.ring_snapshot("r").unwrap();
        reg.check_full("r").unwrap(); // reads don't bump either
        assert_eq!(reg.ring_snapshot("r").unwrap().1, g3);
    }

    #[test]
    fn generations_are_unique_across_rings_and_reregistration() {
        let reg = RingRegistry::in_memory();
        reg.register("a", fddi_spec()).unwrap();
        reg.register("b", fddi_spec()).unwrap();
        let (_, ga) = reg.ring_snapshot("a").unwrap();
        let (_, gb) = reg.ring_snapshot("b").unwrap();
        assert_ne!(ga, gb);
        // Rebuilding the exact same ring under the same name must yield a
        // fresh generation: stale (ring, generation) cache keys cannot
        // resolve to the new incarnation.
        reg.admit("a", "s", stream(20.0, 100_000)).unwrap();
        let (_, g_old) = reg.ring_snapshot("a").unwrap();
        reg.unregister("a").unwrap();
        reg.register("a", fddi_spec()).unwrap();
        reg.admit("a", "s", stream(20.0, 100_000)).unwrap();
        let (state, g_new) = reg.ring_snapshot("a").unwrap();
        assert_eq!(state.streams.len(), 1);
        assert!(g_new > g_old);
    }

    #[test]
    fn reopened_registry_assigns_fresh_generations() {
        let dir = std::env::temp_dir().join(format!(
            "ringrt-registry-gen-test-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        {
            let reg = RingRegistry::open(&dir).unwrap();
            reg.register("lab", fddi_spec()).unwrap();
            reg.admit("lab", "cam", stream(20.0, 100_000)).unwrap();
        }
        let reg = RingRegistry::open(&dir).unwrap();
        let (_, g) = reg.ring_snapshot("lab").unwrap();
        assert!(g > 0);
        // Post-recovery mutations keep advancing past the replayed ones.
        reg.admit("lab", "mic", stream(50.0, 200_000)).unwrap();
        assert!(reg.ring_snapshot("lab").unwrap().1 > g);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn reset_counters_zeroes_work_counters_only() {
        let reg = RingRegistry::in_memory();
        reg.register("r", fddi_spec()).unwrap();
        reg.admit("r", "s0", stream(20.0, 50_000)).unwrap();
        reg.admit("r", "s1", stream(40.0, 50_000)).unwrap();
        assert!(reg.metrics().full_tests + reg.metrics().incremental_tests > 0);
        reg.reset_counters();
        let m = reg.metrics();
        assert_eq!(m.incremental_tests, 0);
        assert_eq!(m.full_tests, 0);
        assert_eq!(m.incremental_evaluations, 0);
        assert_eq!(m.full_evaluations, 0);
        // Gauges reflect live state and must survive the reset.
        assert_eq!(m.rings, 1);
        assert_eq!(m.streams, 2);
    }

    #[test]
    fn attached_recorder_sees_journal_spans() {
        let dir = std::env::temp_dir().join(format!(
            "ringrt-registry-obs-test-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let rec = std::sync::Arc::new(ringrt_obs::Recorder::new());
        let reg = RingRegistry::open(&dir).unwrap();
        reg.attach_recorder(std::sync::Arc::clone(&rec));
        reg.register("lab", fddi_spec()).unwrap();
        reg.admit("lab", "cam", stream(20.0, 100_000)).unwrap();
        reg.compact().unwrap();
        let names: Vec<&str> = rec.drain(64).iter().map(|e| e.name).collect();
        assert!(names.contains(&"journal_append"), "{names:?}");
        assert!(names.contains(&"journal_fsync"), "{names:?}");
        assert!(names.contains(&"compact"), "{names:?}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn check_full_reports_empty_ring() {
        let reg = RingRegistry::in_memory();
        reg.register("r", fddi_spec()).unwrap();
        assert!(matches!(
            reg.check_full("r"),
            Err(RegistryError::EmptyRing { .. })
        ));
        assert!(matches!(
            reg.check_full("ghost"),
            Err(RegistryError::UnknownRing { .. })
        ));
    }
}
