//! Overhead accounting for the priority-driven protocol (paper §4.3).
//!
//! The effective medium time consumed by a message exceeds its raw
//! transmission time `C_i` because of
//!
//! * per-frame overhead bits (`F_ovhd`),
//! * header-return stalls: after sending a frame the transmitter must see
//!   the frame header come back around the ring (with the reservation bids
//!   of the other stations) before the medium is reusable, so when the
//!   frame time `F` is shorter than the token circulation time `Θ` each
//!   frame effectively occupies `Θ`;
//! * token circulation: issuing a free token and having it claimed costs
//!   `Θ/2` on average — per frame in standard IEEE 802.5, per message in
//!   the modified variant.

use ringrt_model::{FrameFormat, RingConfig, SyncStream};
use ringrt_units::Seconds;

use super::PdpVariant;

/// Effective medium time of the final (possibly short) frame when `F > Θ`.
///
/// With `K_i = L_i + 1` the last frame carries `C_i − L_i·F_info` payload
/// time plus overhead; the transmitter still needs the header back before
/// releasing, so the effective requirement is
/// `max(C_i − L_i·F_info + F_ovhd, Θ)` (paper §4.3 case 2). For an exact
/// split (`K_i = L_i`) there is no extra frame and this value is unused.
#[must_use]
pub fn effective_last_frame_time(
    stream: &SyncStream,
    ring: &RingConfig,
    frame: &FrameFormat,
) -> Seconds {
    let bw = ring.bandwidth();
    let split = frame.split(stream.length_bits());
    let theta = ring.token_circulation_time();
    let last_frame_time = bw.transmission_time(split.last_payload) + frame.overhead_time(bw);
    last_frame_time.max(theta)
}

/// The blocking bound `B = 2·max(F, Θ)` of Lemma 4.1.
///
/// During the active interval of any message, lower-priority traffic
/// (including asynchronous frames) can block higher-priority messages for
/// at most two effective frame times: one frame already in flight when the
/// message arrives, plus one more won through the distributed arbitration
/// race.
#[must_use]
pub fn blocking_bound(ring: &RingConfig, frame: &FrameFormat) -> Seconds {
    let f = frame.frame_time(ring.bandwidth());
    let theta = ring.token_circulation_time();
    2.0 * f.max(theta)
}

/// The augmented message length `C'_i` of Theorem 4.1: the total effective
/// medium time to deliver one message of stream `stream`, including frame
/// overheads, header-return stalls, and token circulation.
///
/// With `K` = total frames, `L` = full frames, `F` = full-frame time and
/// `Θ` = token circulation time:
///
/// | regime | standard IEEE 802.5 | modified |
/// |---|---|---|
/// | `F ≤ Θ` | `K·Θ + K·Θ/2` | `K·Θ + Θ/2` |
/// | `F > Θ` | `L·F + K·Θ/2 + (K−L)·max(C−L·F_info+F_ovhd, Θ)` | `L·F + Θ/2 + (K−L)·max(…)` |
///
/// # Examples
///
/// ```
/// use ringrt_core::pdp::{augmented_length, PdpVariant};
/// use ringrt_model::{FrameFormat, RingConfig, SyncStream};
/// use ringrt_units::{Bandwidth, Bits, Seconds};
///
/// let ring = RingConfig::ieee_802_5(100, Bandwidth::from_mbps(4.0));
/// let frame = FrameFormat::paper_default();
/// let s = SyncStream::new(Seconds::from_millis(50.0), Bits::new(5_120));
/// let c_std = augmented_length(&s, &ring, &frame, PdpVariant::Standard);
/// let c_mod = augmented_length(&s, &ring, &frame, PdpVariant::Modified);
/// // The modified variant pays the token overhead once, so it never loses.
/// assert!(c_mod <= c_std);
/// // Both exceed the raw transmission time.
/// assert!(c_mod > s.transmission_time(ring.bandwidth()));
/// ```
#[must_use]
pub fn augmented_length(
    stream: &SyncStream,
    ring: &RingConfig,
    frame: &FrameFormat,
    variant: PdpVariant,
) -> Seconds {
    let bw = ring.bandwidth();
    let split = frame.split(stream.length_bits());
    let k = split.total_frames as f64;
    let l = split.full_frames as f64;
    let f = frame.frame_time(bw);
    let theta = ring.token_circulation_time();
    let half_theta = theta / 2.0;

    let token_overhead = match variant {
        PdpVariant::Standard => half_theta * k,
        PdpVariant::Modified => half_theta,
    };

    if f <= theta {
        // Every frame is stalled until its header returns: effective time Θ.
        theta * k + token_overhead
    } else {
        let last = if split.is_exact() {
            Seconds::ZERO
        } else {
            effective_last_frame_time(stream, ring, frame)
        };
        f * l + token_overhead + (k - l) * last
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ringrt_units::{Bandwidth, Bits};

    fn stream(period_ms: f64, bits: u64) -> SyncStream {
        SyncStream::new(Seconds::from_millis(period_ms), Bits::new(bits))
    }

    /// A tiny ring whose Θ is far below the frame time at 1 Mbps, so the
    /// `F > Θ` regime applies.
    fn low_speed_ring() -> RingConfig {
        RingConfig::ieee_802_5(2, Bandwidth::from_mbps(1.0))
    }

    /// The paper's 100-station ring at 100 Mbps, where Θ ≫ F.
    fn high_speed_ring() -> RingConfig {
        RingConfig::ieee_802_5(100, Bandwidth::from_mbps(100.0))
    }

    #[test]
    fn regime_f_le_theta_charges_theta_per_frame() {
        let ring = high_speed_ring();
        let frame = FrameFormat::paper_default();
        let theta = ring.token_circulation_time();
        let f = frame.frame_time(ring.bandwidth());
        assert!(f <= theta, "test needs the F ≤ Θ regime");

        // Exactly 3 full frames.
        let s = stream(100.0, 512 * 3);
        let std = augmented_length(&s, &ring, &frame, PdpVariant::Standard);
        let modv = augmented_length(&s, &ring, &frame, PdpVariant::Modified);
        let expect_std = theta * 3.0 + (theta / 2.0) * 3.0;
        let expect_mod = theta * 3.0 + theta / 2.0;
        assert!((std.as_secs_f64() - expect_std.as_secs_f64()).abs() < 1e-15);
        assert!((modv.as_secs_f64() - expect_mod.as_secs_f64()).abs() < 1e-15);
    }

    #[test]
    fn regime_f_gt_theta_exact_split() {
        let ring = low_speed_ring();
        let frame = FrameFormat::paper_default();
        let theta = ring.token_circulation_time();
        let f = frame.frame_time(ring.bandwidth());
        assert!(f > theta, "test needs the F > Θ regime");

        // Exactly 2 full frames: C' = 2F + token overhead.
        let s = stream(100.0, 1024);
        let std = augmented_length(&s, &ring, &frame, PdpVariant::Standard);
        let modv = augmented_length(&s, &ring, &frame, PdpVariant::Modified);
        let expect_std = f * 2.0 + (theta / 2.0) * 2.0;
        let expect_mod = f * 2.0 + theta / 2.0;
        assert!((std.as_secs_f64() - expect_std.as_secs_f64()).abs() < 1e-15);
        assert!((modv.as_secs_f64() - expect_mod.as_secs_f64()).abs() < 1e-15);
    }

    #[test]
    fn regime_f_gt_theta_partial_last_frame() {
        let ring = low_speed_ring();
        let frame = FrameFormat::paper_default();
        let theta = ring.token_circulation_time();
        let f = frame.frame_time(ring.bandwidth());
        let bw = ring.bandwidth();

        // 2 full frames plus a 100-bit remainder.
        let s = stream(100.0, 1024 + 100);
        let last_time = bw.transmission_time(Bits::new(100 + 112));
        let expected_last = last_time.max(theta);
        let std = augmented_length(&s, &ring, &frame, PdpVariant::Standard);
        let expect = f * 2.0 + (theta / 2.0) * 3.0 + expected_last;
        assert!((std.as_secs_f64() - expect.as_secs_f64()).abs() < 1e-15);
    }

    #[test]
    fn tiny_last_frame_clamped_to_theta() {
        // Make the remainder so small that its frame time is below Θ even
        // though a full frame is above: the effective time must clamp at Θ.
        let ring = RingConfig::ieee_802_5(100, Bandwidth::from_mbps(2.0));
        let frame = FrameFormat::with_payload(Bits::new(4096)).unwrap();
        let theta = ring.token_circulation_time();
        let f = frame.frame_time(ring.bandwidth());
        assert!(f > theta);
        let s = stream(100.0, 4096 + 1); // one bit of remainder
        let last = effective_last_frame_time(&s, &ring, &frame);
        assert_eq!(last, theta);
    }

    #[test]
    fn modified_never_exceeds_standard() {
        for mbps in [1.0, 4.0, 16.0, 100.0, 1000.0] {
            let ring = RingConfig::ieee_802_5(100, Bandwidth::from_mbps(mbps));
            let frame = FrameFormat::paper_default();
            for bits in [1, 512, 513, 5_120, 51_200] {
                let s = stream(100.0, bits);
                let std = augmented_length(&s, &ring, &frame, PdpVariant::Standard);
                let modv = augmented_length(&s, &ring, &frame, PdpVariant::Modified);
                assert!(
                    modv <= std,
                    "modified worse at {mbps} Mbps, {bits} bits: {modv} vs {std}"
                );
            }
        }
    }

    #[test]
    fn augmented_exceeds_raw_transmission_time() {
        for mbps in [1.0, 10.0, 100.0] {
            let ring = RingConfig::ieee_802_5(100, Bandwidth::from_mbps(mbps));
            let frame = FrameFormat::paper_default();
            let s = stream(100.0, 10_240);
            let raw = s.transmission_time(ring.bandwidth());
            for v in [PdpVariant::Standard, PdpVariant::Modified] {
                assert!(augmented_length(&s, &ring, &frame, v) > raw);
            }
        }
    }

    #[test]
    fn blocking_is_two_max_f_theta() {
        let ring = low_speed_ring();
        let frame = FrameFormat::paper_default();
        let f = frame.frame_time(ring.bandwidth());
        assert_eq!(blocking_bound(&ring, &frame), 2.0 * f);

        let ring = high_speed_ring();
        let theta = ring.token_circulation_time();
        assert_eq!(blocking_bound(&ring, &frame), 2.0 * theta);
    }

    #[test]
    fn single_frame_message() {
        let ring = low_speed_ring();
        let frame = FrameFormat::paper_default();
        let theta = ring.token_circulation_time();
        let bw = ring.bandwidth();
        // 10-bit message: K = 1, L = 0.
        let s = stream(100.0, 10);
        let std = augmented_length(&s, &ring, &frame, PdpVariant::Standard);
        let last = (bw.transmission_time(Bits::new(10 + 112))).max(theta);
        let expect = theta / 2.0 + last;
        assert!((std.as_secs_f64() - expect.as_secs_f64()).abs() < 1e-15);
    }
}
