//! Integration test for the paper's headline artifact: the *shape* of
//! Figure 1 (FIG1 / CLAIM-XOVER / CLAIM-MODIFIED in DESIGN.md).
//!
//! Absolute ABU values depend on the population details the paper leaves
//! unspecified, but the qualitative claims are crisp and must hold:
//!
//! 1. the priority driven protocol beats the timed token protocol at low
//!    bandwidths, and the ordering flips at high bandwidths;
//! 2. the 802.5 curves are non-monotone in bandwidth (overhead anomaly);
//! 3. the modified 802.5 variant dominates the standard one;
//! 4. the FDDI curve improves with bandwidth.

use ringrt::breakdown::sweep::{figure1, SweepConfig};

fn shape_config() -> SweepConfig {
    SweepConfig {
        stations: 20,
        samples: 10,
        seed: 0xF16_u64 ^ 0x1000,
        tolerance: 3e-3,
    }
}

#[test]
fn protocol_ordering_flips_with_bandwidth() {
    let rows = figure1(&[1.0, 1000.0], &shape_config());
    let (low, high) = (&rows[0], &rows[1]);
    assert!(
        low.modified_802_5.mean > low.fddi.mean + 0.05,
        "at 1 Mbps PDP ({:.3}) must clearly beat FDDI ({:.3})",
        low.modified_802_5.mean,
        low.fddi.mean
    );
    assert!(
        high.fddi.mean > high.modified_802_5.mean + 0.3,
        "at 1000 Mbps FDDI ({:.3}) must crush PDP ({:.3})",
        high.fddi.mean,
        high.modified_802_5.mean
    );
}

#[test]
fn ieee_802_5_curve_is_non_monotone() {
    // The paper's §6 observation: 802.5 improves with bandwidth at first,
    // then collapses once Θ (propagation-bound) exceeds the frame time F.
    let rows = figure1(&[1.0, 10.0, 1000.0], &shape_config());
    let (a, b, c) = (&rows[0], &rows[1], &rows[2]);
    assert!(
        b.modified_802_5.mean > a.modified_802_5.mean - 0.02,
        "modified 802.5 should not degrade from 1 → 10 Mbps ({:.3} → {:.3})",
        a.modified_802_5.mean,
        b.modified_802_5.mean
    );
    assert!(
        c.modified_802_5.mean < b.modified_802_5.mean - 0.2,
        "modified 802.5 must collapse at 1000 Mbps ({:.3} → {:.3})",
        b.modified_802_5.mean,
        c.modified_802_5.mean
    );
    assert!(
        c.ieee_802_5.mean < a.ieee_802_5.mean,
        "standard 802.5 at 1000 Mbps must be below its 1 Mbps level"
    );
}

#[test]
fn modified_variant_dominates_standard() {
    let rows = figure1(&[1.0, 10.0, 100.0], &shape_config());
    for r in &rows {
        assert!(
            r.modified_802_5.mean >= r.ieee_802_5.mean - 0.02,
            "at {} Mbps the modified variant ({:.3}) fell below the standard ({:.3})",
            r.mbps,
            r.modified_802_5.mean,
            r.ieee_802_5.mean
        );
    }
}

#[test]
fn fddi_improves_with_bandwidth() {
    let rows = figure1(&[1.0, 10.0, 100.0, 1000.0], &shape_config());
    for w in rows.windows(2) {
        assert!(
            w[1].fddi.mean >= w[0].fddi.mean - 0.02,
            "FDDI ABU regressed from {} Mbps ({:.3}) to {} Mbps ({:.3})",
            w[0].mbps,
            w[0].fddi.mean,
            w[1].mbps,
            w[1].fddi.mean
        );
    }
}
