//! Exact integer time for the discrete-event simulator.

use core::fmt;
use core::iter::Sum;
use core::ops::{Add, AddAssign, Mul, Sub, SubAssign};

use crate::Seconds;

/// Picoseconds per second.
pub const PICOS_PER_SEC: u64 = 1_000_000_000_000;

/// An absolute instant on the simulator timeline, in integer picoseconds.
///
/// Discrete-event simulation demands an exactly ordered, drift-free clock so
/// that runs are reproducible and event ties can be broken deterministically.
/// One picosecond resolves a single bit time at 1 Tbps — far finer than the
/// 1–1000 Mbps rings simulated here — while `u64` picoseconds still span
/// about five years of simulated time.
///
/// Instants and durations are distinct types: `SimTime − SimTime =`
/// [`SimDuration`], `SimTime + SimDuration = SimTime`, and durations support
/// scaling. Instants deliberately do not support addition with each other.
///
/// # Examples
///
/// ```
/// use ringrt_units::{SimDuration, SimTime};
///
/// let t0 = SimTime::ZERO;
/// let t1 = t0 + SimDuration::from_picos(250);
/// assert_eq!(t1 - t0, SimDuration::from_picos(250));
/// assert!(t1 > t0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

impl SimTime {
    /// The simulation epoch (t = 0).
    pub const ZERO: SimTime = SimTime(0);

    /// The largest representable instant.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates an instant from raw picoseconds since the epoch.
    #[must_use]
    pub const fn from_picos(ps: u64) -> Self {
        SimTime(ps)
    }

    /// Raw picoseconds since the epoch.
    #[must_use]
    pub const fn as_picos(self) -> u64 {
        self.0
    }

    /// The instant as (lossy) floating-point seconds, for reporting.
    #[must_use]
    pub fn as_seconds(self) -> Seconds {
        Seconds::new(self.0 as f64 / PICOS_PER_SEC as f64)
    }

    /// Duration elapsed since `earlier`.
    ///
    /// # Panics
    ///
    /// Panics if `earlier` is later than `self`.
    #[must_use]
    pub fn duration_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(
            self.0
                .checked_sub(earlier.0)
                .expect("duration_since: earlier instant is later than self"),
        )
    }

    /// Duration since `earlier`, or zero if `earlier` is in the future.
    #[must_use]
    pub const fn saturating_duration_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Checked advance; `None` on overflow of the timeline.
    #[must_use]
    pub const fn checked_add(self, d: SimDuration) -> Option<SimTime> {
        match self.0.checked_add(d.0) {
            Some(v) => Some(SimTime(v)),
            None => None,
        }
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.as_seconds())
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.checked_add(rhs.0).expect("simulation time overflow"))
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        self.duration_since(rhs)
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    /// # Panics
    ///
    /// Panics if the result would precede the epoch.
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(
            self.0
                .checked_sub(rhs.0)
                .expect("simulation time underflow (before epoch)"),
        )
    }
}

/// A span of simulated time, in integer picoseconds.
///
/// See [`SimTime`] for the rationale behind integer time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimDuration {
    /// The zero duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Creates a duration from raw picoseconds.
    #[must_use]
    pub const fn from_picos(ps: u64) -> Self {
        SimDuration(ps)
    }

    /// Creates a duration from whole nanoseconds.
    #[must_use]
    pub const fn from_nanos(ns: u64) -> Self {
        SimDuration(ns * 1000)
    }

    /// Creates a duration from whole microseconds.
    #[must_use]
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us * 1_000_000)
    }

    /// Creates a duration from whole milliseconds.
    #[must_use]
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000_000_000)
    }

    /// Converts from analysis-domain seconds, rounding to the nearest
    /// picosecond.
    ///
    /// # Panics
    ///
    /// Panics if `secs` is negative, non-finite, or too large for the
    /// picosecond timeline.
    #[must_use]
    pub fn from_seconds(secs: Seconds) -> Self {
        let v = secs.as_secs_f64();
        assert!(
            v.is_finite() && v >= 0.0,
            "simulator durations must be non-negative and finite, got {v} s"
        );
        let ps = v * PICOS_PER_SEC as f64;
        assert!(
            ps <= u64::MAX as f64,
            "duration {v} s overflows the picosecond timeline"
        );
        SimDuration(ps.round() as u64)
    }

    /// Raw picoseconds.
    #[must_use]
    pub const fn as_picos(self) -> u64 {
        self.0
    }

    /// The duration as (lossy) floating-point seconds.
    #[must_use]
    pub fn as_seconds(self) -> Seconds {
        Seconds::new(self.0 as f64 / PICOS_PER_SEC as f64)
    }

    /// Returns `true` if the duration is zero.
    #[must_use]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Saturating subtraction: `max(self − rhs, 0)`.
    #[must_use]
    pub const fn saturating_sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }

    /// Returns the smaller of two durations.
    #[must_use]
    pub fn min(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.min(other.0))
    }

    /// Returns the larger of two durations.
    #[must_use]
    pub fn max(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.max(other.0))
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.as_seconds())
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.checked_add(rhs.0).expect("duration overflow"))
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    /// # Panics
    ///
    /// Panics on underflow; use [`SimDuration::saturating_sub`] when the
    /// operands may cross.
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.checked_sub(rhs.0).expect("duration underflow"))
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0.checked_mul(rhs).expect("duration overflow"))
    }
}

impl Mul<SimDuration> for u64 {
    type Output = SimDuration;
    fn mul(self, rhs: SimDuration) -> SimDuration {
        rhs * self
    }
}

impl Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> SimDuration {
        iter.fold(SimDuration::ZERO, Add::add)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn instant_duration_algebra() {
        let t0 = SimTime::from_picos(100);
        let d = SimDuration::from_picos(50);
        assert_eq!(t0 + d, SimTime::from_picos(150));
        assert_eq!((t0 + d) - t0, d);
        assert_eq!(t0 - d, SimTime::from_picos(50));
        let mut t = t0;
        t += d;
        assert_eq!(t, SimTime::from_picos(150));
    }

    #[test]
    fn duration_constructors() {
        assert_eq!(SimDuration::from_nanos(1).as_picos(), 1_000);
        assert_eq!(SimDuration::from_micros(1).as_picos(), 1_000_000);
        assert_eq!(SimDuration::from_millis(1).as_picos(), 1_000_000_000);
    }

    #[test]
    fn seconds_roundtrip() {
        let s = Seconds::from_micros(156.0);
        let d = SimDuration::from_seconds(s);
        assert_eq!(d.as_picos(), 156_000_000);
        assert!((d.as_seconds().as_secs_f64() - s.as_secs_f64()).abs() < 1e-15);
    }

    #[test]
    fn rounding_is_nearest() {
        // 0.4 ps rounds down, 0.6 ps rounds up.
        assert_eq!(
            SimDuration::from_seconds(Seconds::new(0.4e-12)).as_picos(),
            0
        );
        assert_eq!(
            SimDuration::from_seconds(Seconds::new(0.6e-12)).as_picos(),
            1
        );
    }

    #[test]
    fn saturating_ops() {
        let a = SimDuration::from_picos(5);
        let b = SimDuration::from_picos(9);
        assert_eq!(a.saturating_sub(b), SimDuration::ZERO);
        assert_eq!(b.saturating_sub(a), SimDuration::from_picos(4));
        let t = SimTime::from_picos(3);
        assert_eq!(
            t.saturating_duration_since(SimTime::from_picos(10)),
            SimDuration::ZERO
        );
    }

    #[test]
    #[should_panic(expected = "later than self")]
    fn duration_since_panics_backwards() {
        let _ = SimTime::ZERO.duration_since(SimTime::from_picos(1));
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_seconds_rejected() {
        let _ = SimDuration::from_seconds(Seconds::new(-1.0));
    }

    #[test]
    fn scaling_and_sum() {
        let d = SimDuration::from_picos(7);
        assert_eq!(d * 3, SimDuration::from_picos(21));
        assert_eq!(3 * d, SimDuration::from_picos(21));
        let total: SimDuration = [d, d, d].into_iter().sum();
        assert_eq!(total, SimDuration::from_picos(21));
    }

    #[test]
    fn checked_add_overflow() {
        assert!(SimTime::MAX
            .checked_add(SimDuration::from_picos(1))
            .is_none());
        assert_eq!(
            SimTime::ZERO.checked_add(SimDuration::from_picos(1)),
            Some(SimTime::from_picos(1))
        );
    }

    #[test]
    fn ordering_is_total() {
        let mut v = vec![
            SimTime::from_picos(5),
            SimTime::ZERO,
            SimTime::from_picos(3),
        ];
        v.sort();
        assert_eq!(
            v,
            vec![
                SimTime::ZERO,
                SimTime::from_picos(3),
                SimTime::from_picos(5)
            ]
        );
    }
}
