//! Frame-level simulator of the priority-driven (IEEE 802.5) MAC.

use rand::rngs::StdRng;
use rand::SeedableRng;

use ringrt_core::pdp::PdpVariant;
use ringrt_des::EventQueue;
use ringrt_model::{FrameFormat, MessageSet};
use ringrt_units::{Bits, SimDuration, SimTime};

use crate::metrics::MetricsCollector;
use crate::trace::TraceRecorder;
use crate::traffic::{AsyncTraffic, SyncTraffic};
use crate::{SimConfig, SimReport, TraceKind};

/// Priority rank used by asynchronous frames: below every synchronous
/// stream.
const ASYNC_RANK: usize = usize::MAX;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Event {
    /// The free token arrives at a station (tagged with its generation so
    /// that tokens invalidated by a loss are discarded in flight).
    TokenArrive(usize, u32),
    /// A station finishes one frame's effective medium occupancy.
    FrameDone(usize),
    /// A synchronous stream releases its next message.
    SyncArrival(usize),
    /// An asynchronous frame is queued at a station.
    AsyncArrival(usize),
    /// Fault injection: the free token is lost (if not currently held).
    TokenLoss,
}

/// Frame-level simulator of the IEEE 802.5 priority token MAC running the
/// rate-monotonic policy of the paper's §4.
///
/// Mechanics mirrored from the analysis:
///
/// * messages split into fixed-size frames; one frame per token capture
///   (standard variant) or consecutive frames while the station remains the
///   highest-priority contender (modified variant);
/// * each frame occupies the medium for `max(F, Θ)` — the transmitter must
///   see its header (with the other stations' reservation bids) return
///   before the medium is reusable;
/// * on release, the token priority is set to the highest pending priority
///   on the ring (the steady state the reservation field converges to) and
///   the token walks hop-by-hop to the next claimant, so the `Θ/2` average
///   circulation overhead — and blocking by passed-by stations — emerge
///   naturally rather than being assumed;
/// * asynchronous frames contend at a rank below every synchronous stream.
///
/// # Examples
///
/// ```
/// use ringrt_core::pdp::PdpVariant;
/// use ringrt_model::{FrameFormat, MessageSet, RingConfig, SyncStream};
/// use ringrt_sim::{PdpSimulator, SimConfig};
/// use ringrt_units::{Bandwidth, Bits, Seconds};
///
/// let ring = RingConfig::ieee_802_5(2, Bandwidth::from_mbps(4.0));
/// let set = MessageSet::new(vec![
///     SyncStream::new(Seconds::from_millis(20.0), Bits::new(4_000)),
///     SyncStream::new(Seconds::from_millis(40.0), Bits::new(8_000)),
/// ])?;
/// let config = SimConfig::new(ring, Seconds::new(1.0));
/// let report = PdpSimulator::new(&set, config, FrameFormat::paper_default(), PdpVariant::Standard)
///     .run();
/// assert_eq!(report.deadline_misses(), 0);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug)]
pub struct PdpSimulator {
    config: SimConfig,
    frame: FrameFormat,
    variant: PdpVariant,
    /// Rate-monotonic priority rank per station (0 = highest).
    rank: Vec<usize>,
    theta: SimDuration,
    hop_latency: SimDuration,
    token_time: SimDuration,
    async_frame_bits: u64,
    sync: Vec<SyncTraffic>,
    asynchronous: Vec<AsyncTraffic>,
    /// Current free-token priority level (capture needs `rank ≤ level`).
    token_level: usize,
    /// Generation of the live token; stale arrivals are discarded.
    token_gen: u32,
    /// The medium is held (frame in progress) until this instant.
    busy_until: SimTime,
    rng: StdRng,
    queue: EventQueue<Event>,
    metrics: MetricsCollector,
    trace: TraceRecorder,
}

impl PdpSimulator {
    /// Builds a simulator for `set` over `config.ring()` with the given
    /// frame format and protocol variant. Stream priorities follow the
    /// rate-monotonic order of `set`.
    #[must_use]
    pub fn new(
        set: &MessageSet,
        config: SimConfig,
        frame: FrameFormat,
        variant: PdpVariant,
    ) -> Self {
        let order = set.rm_order();
        let mut rank = vec![0usize; set.len()];
        for (r, &station) in order.iter().enumerate() {
            rank[station] = r;
        }
        let bw = config.ring().bandwidth();
        let stations = config.ring().stations();
        PdpSimulator {
            frame,
            variant,
            rank,
            theta: config.ring().token_circulation_time().to_sim_duration(),
            hop_latency: config.ring().hop_latency().to_sim_duration(),
            token_time: config.ring().token_time().to_sim_duration(),
            async_frame_bits: config.async_payload_bits(),
            sync: SyncTraffic::build(set, config.phasing()),
            asynchronous: AsyncTraffic::build(
                stations,
                config.async_load(),
                config.async_payload_bits(),
                bw.as_bps(),
            ),
            token_level: ASYNC_RANK,
            token_gen: 0,
            busy_until: SimTime::ZERO,
            rng: StdRng::seed_from_u64(config.seed()),
            queue: EventQueue::new(),
            metrics: MetricsCollector::new(set.len()),
            trace: TraceRecorder::new(config.trace_capacity()),
            config,
        }
    }

    /// The protocol variant simulated.
    #[must_use]
    pub fn variant(&self) -> PdpVariant {
        self.variant
    }

    /// Restricts arbitration to `levels` hardware priority classes (802.5
    /// has 8): streams are mapped onto levels in deadline-monotonic order
    /// and same-level stations win by ring position, as on real hardware.
    ///
    /// # Panics
    ///
    /// Panics if `levels` is zero.
    #[must_use]
    pub fn with_priority_levels(mut self, levels: usize) -> Self {
        let n = self.rank.len();
        let quantized = ringrt_core::pdp::quantize_ranks(n, levels);
        // self.rank maps station → unique dm rank; remap through the
        // quantization (rank r → level quantized[r]).
        for r in &mut self.rank {
            *r = quantized[*r];
        }
        self
    }

    /// Runs the simulation to the configured horizon and reports.
    #[must_use]
    pub fn run(mut self) -> SimReport {
        let end = SimTime::ZERO + self.config.duration();
        for (i, s) in self.sync.iter().enumerate() {
            self.queue
                .schedule_at(s.first_arrival(), Event::SyncArrival(i));
        }
        for st in 0..self.asynchronous.len() {
            if self.asynchronous[st].is_active() {
                let gap = self.asynchronous[st]
                    .next_gap(&mut self.rng)
                    .expect("active source");
                self.queue
                    .schedule_at(SimTime::ZERO + gap, Event::AsyncArrival(st));
            }
        }
        self.queue
            .schedule_at(SimTime::ZERO, Event::TokenArrive(0, 0));
        if self.config.token_loss_rate() > 0.0 {
            let gap = self.loss_gap();
            self.queue
                .schedule_at(SimTime::ZERO + gap, Event::TokenLoss);
        }

        while let Some((now, event)) = self.queue.pop_until(end) {
            match event {
                Event::SyncArrival(stream) => {
                    let next = self.sync[stream].arrive(now);
                    self.queue.schedule_at(next, Event::SyncArrival(stream));
                }
                Event::AsyncArrival(st) => {
                    self.asynchronous[st].arrive(now);
                    let gap = self.asynchronous[st]
                        .next_gap(&mut self.rng)
                        .expect("active source");
                    self.queue.schedule_at(now + gap, Event::AsyncArrival(st));
                }
                Event::TokenArrive(st, gen) => {
                    if gen == self.token_gen {
                        self.token_arrive(st, now);
                    }
                }
                Event::FrameDone(st) => self.frame_done(st, now),
                Event::TokenLoss => self.token_loss(now),
            }
        }

        self.finish(end)
    }

    /// The priority rank of the best pending frame at station `st`
    /// (synchronous beats asynchronous), or `None` if it has nothing
    /// to send.
    fn station_bid(&self, st: usize) -> Option<usize> {
        if st < self.sync.len() && self.sync[st].has_backlog() {
            Some(self.rank[st])
        } else if self.asynchronous[st].queued() > 0 {
            Some(ASYNC_RANK)
        } else {
            None
        }
    }

    /// The best (numerically smallest) pending rank on the whole ring —
    /// the value the reservation field converges to.
    fn best_pending_rank(&self) -> usize {
        (0..self.config.ring().stations())
            .filter_map(|st| self.station_bid(st))
            .min()
            .unwrap_or(ASYNC_RANK)
    }

    fn token_arrive(&mut self, st: usize, now: SimTime) {
        self.trace
            .record(now, TraceKind::TokenArrive { station: st });
        if st == 0 {
            self.metrics.mark_rotation(now);
        }
        let captures = matches!(self.station_bid(st), Some(bid) if bid <= self.token_level);
        if captures {
            self.start_frame(st, now);
        } else {
            let next = (st + 1) % self.config.ring().stations();
            self.queue.schedule_at(
                now + self.hop_latency,
                Event::TokenArrive(next, self.token_gen),
            );
        }
    }

    /// Draws the next exponential token-loss gap.
    fn loss_gap(&mut self) -> SimDuration {
        use rand::Rng as _;
        let rate = self.config.token_loss_rate();
        let u: f64 = 1.0 - self.rng.gen::<f64>();
        SimDuration::from_seconds(ringrt_units::Seconds::new((-u.ln() / rate).max(1e-12)))
    }

    /// Handles a token-loss event: a free token vanishes and the active
    /// monitor regenerates one (at the lowest priority, per the standard)
    /// after the configured recovery time.
    fn token_loss(&mut self, now: SimTime) {
        let gap = self.loss_gap();
        self.queue.schedule_at(now + gap, Event::TokenLoss);
        if now < self.busy_until {
            return; // a station holds the ring: no free token to lose
        }
        self.token_gen = self.token_gen.wrapping_add(1);
        self.metrics.token_losses += 1;
        self.trace.record(now, TraceKind::TokenLost);
        self.token_level = ASYNC_RANK; // regenerated tokens start unreserved
        let recovery_at = now + self.config.token_recovery().to_sim_duration();
        self.trace.record(recovery_at, TraceKind::TokenRecovered);
        self.queue
            .schedule_at(recovery_at, Event::TokenArrive(0, self.token_gen));
    }

    /// Begins transmitting one frame at `st`; schedules its completion
    /// after the effective occupancy `max(frame time, Θ)`.
    fn start_frame(&mut self, st: usize, now: SimTime) {
        let bw = self.config.ring().bandwidth();
        let is_sync = self.sync[st].has_backlog();
        let (payload_bits, completion) = if is_sync {
            let head = *self.sync[st].head().expect("backlog");
            let payload = head.remaining.min(self.frame.payload());
            let (taken, done) = self.sync[st].consume(payload);
            debug_assert_eq!(taken, payload);
            (payload, done)
        } else {
            let wait = self.asynchronous[st].take_frame(now);
            self.metrics.async_waits.push(wait);
            self.metrics.async_frames_sent += 1;
            (Bits::new(self.async_frame_bits), None)
        };
        self.trace.record(
            now,
            TraceKind::FrameStart {
                station: st,
                synchronous: is_sync,
                bits: payload_bits.as_u64(),
            },
        );
        let tx_time = bw
            .transmission_time(payload_bits + self.frame.overhead())
            .to_sim_duration();
        self.metrics.busy.set_busy(now);
        self.metrics.busy.set_idle(now + tx_time);
        if let Some(msg) = completion {
            // The message is delivered when its last bit is transmitted.
            self.trace.record(
                now + tx_time,
                TraceKind::MessageComplete {
                    stream: st,
                    late: now + tx_time > msg.deadline,
                },
            );
            self.metrics
                .message_done(st, msg.arrival, msg.deadline, now + tx_time);
        }
        let occupancy = tx_time.max(self.theta);
        self.busy_until = now + occupancy;
        self.queue
            .schedule_at(now + occupancy, Event::FrameDone(st));
    }

    fn frame_done(&mut self, st: usize, now: SimTime) {
        if self.variant == PdpVariant::Modified {
            // Keep transmitting while still the strictly highest-priority
            // contender on the ring.
            if let Some(bid) = self.station_bid(st) {
                let others_best = (0..self.config.ring().stations())
                    .filter(|&s| s != st)
                    .filter_map(|s| self.station_bid(s))
                    .min()
                    .unwrap_or(ASYNC_RANK);
                if bid < others_best {
                    self.start_frame(st, now);
                    return;
                }
            }
        }
        // Release a fresh token carrying the highest pending priority.
        self.token_level = self.best_pending_rank();
        let next = (st + 1) % self.config.ring().stations();
        self.queue.schedule_at(
            now + self.token_time + self.hop_latency,
            Event::TokenArrive(next, self.token_gen),
        );
    }

    fn finish(mut self, end: SimTime) -> SimReport {
        #[allow(unused_assignments)]
        let mut trace_dropped = 0u64;
        for (i, s) in self.sync.iter().enumerate() {
            let mut late = 0;
            let mut cursor = s.clone();
            while let Some(head) = cursor.head() {
                if head.deadline < end {
                    late += 1;
                }
                let _ = cursor.consume(Bits::new(u64::MAX >> 1));
            }
            self.metrics.account_unfinished(i, late);
        }
        SimReport {
            protocol: self.variant.label(),
            simulated: end.duration_since(SimTime::ZERO),
            per_stream: self.metrics.per_stream,
            rotations: self.metrics.rotations,
            async_frames_sent: self.metrics.async_frames_sent,
            async_waits: self.metrics.async_waits,
            token_losses: self.metrics.token_losses,
            medium_utilization: self.metrics.busy.utilization(end),
            events: self.queue.events_processed(),
            trace: {
                let (events, dropped) = self.trace.into_events();
                trace_dropped = dropped;
                events
            },
            trace_dropped,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ringrt_model::{RingConfig, SyncStream};
    use ringrt_units::{Bandwidth, Seconds};

    fn ring(mbps: f64) -> RingConfig {
        RingConfig::ieee_802_5(4, Bandwidth::from_mbps(mbps))
    }

    fn light_set() -> MessageSet {
        MessageSet::new(vec![
            SyncStream::new(Seconds::from_millis(20.0), Bits::new(4_000)),
            SyncStream::new(Seconds::from_millis(40.0), Bits::new(8_000)),
            SyncStream::new(Seconds::from_millis(80.0), Bits::new(16_000)),
            SyncStream::new(Seconds::from_millis(160.0), Bits::new(16_000)),
        ])
        .unwrap()
    }

    #[test]
    fn schedulable_set_meets_deadlines_both_variants() {
        for variant in [PdpVariant::Standard, PdpVariant::Modified] {
            let config = SimConfig::new(ring(4.0), Seconds::new(1.0));
            let report =
                PdpSimulator::new(&light_set(), config, FrameFormat::paper_default(), variant)
                    .run();
            assert_eq!(report.deadline_misses(), 0, "{variant:?}: {report}");
            assert!(report.completed() >= 80, "{variant:?}: {report}");
        }
    }

    #[test]
    fn overload_misses_deadlines() {
        // ≈ 300 % utilization at 1 Mbps.
        let heavy = MessageSet::new(vec![
            SyncStream::new(Seconds::from_millis(10.0), Bits::new(20_000)),
            SyncStream::new(Seconds::from_millis(20.0), Bits::new(20_000)),
        ])
        .unwrap();
        let ring = RingConfig::ieee_802_5(2, Bandwidth::from_mbps(1.0));
        let config = SimConfig::new(ring, Seconds::new(0.5));
        let report = PdpSimulator::new(
            &heavy,
            config,
            FrameFormat::paper_default(),
            PdpVariant::Modified,
        )
        .run();
        assert!(report.deadline_misses() > 0, "{report}");
        // Medium saturated.
        assert!(report.medium_utilization > 0.8, "{report}");
    }

    #[test]
    fn high_priority_stream_protected_under_overload() {
        // Stream 0 (shortest period) must survive even when the ring is
        // swamped by a lower-priority stream.
        let set = MessageSet::new(vec![
            SyncStream::new(Seconds::from_millis(20.0), Bits::new(2_000)),
            SyncStream::new(Seconds::from_millis(50.0), Bits::new(200_000)), // hopeless at 1 Mbps
        ])
        .unwrap();
        let ring = RingConfig::ieee_802_5(2, Bandwidth::from_mbps(1.0));
        let config = SimConfig::new(ring, Seconds::new(1.0));
        let report = PdpSimulator::new(
            &set,
            config,
            FrameFormat::paper_default(),
            PdpVariant::Standard,
        )
        .run();
        assert_eq!(report.per_stream[0].deadline_misses, 0, "{report}");
        assert!(report.per_stream[1].deadline_misses > 0, "{report}");
    }

    #[test]
    fn modified_variant_is_at_least_as_fast() {
        let config = SimConfig::new(ring(4.0), Seconds::new(1.0));
        let std = PdpSimulator::new(
            &light_set(),
            config,
            FrameFormat::paper_default(),
            PdpVariant::Standard,
        )
        .run();
        let modv = PdpSimulator::new(
            &light_set(),
            config,
            FrameFormat::paper_default(),
            PdpVariant::Modified,
        )
        .run();
        let worst = |r: &SimReport| {
            r.per_stream
                .iter()
                .filter_map(|s| s.worst_response())
                .max()
                .unwrap()
        };
        assert!(
            worst(&modv) <= worst(&std),
            "modified worst {} vs standard worst {}",
            worst(&modv),
            worst(&std)
        );
    }

    #[test]
    fn async_traffic_is_strictly_background() {
        let quiet = SimConfig::new(ring(4.0), Seconds::new(0.5));
        let busy = quiet.with_async_load(0.3);
        let r_quiet = PdpSimulator::new(
            &light_set(),
            quiet,
            FrameFormat::paper_default(),
            PdpVariant::Standard,
        )
        .run();
        let r_busy = PdpSimulator::new(
            &light_set(),
            busy,
            FrameFormat::paper_default(),
            PdpVariant::Standard,
        )
        .run();
        assert_eq!(r_quiet.async_frames_sent, 0);
        assert!(r_busy.async_frames_sent > 50);
        assert_eq!(r_busy.deadline_misses(), 0, "{r_busy}");
    }

    #[test]
    fn deterministic_runs() {
        let config = SimConfig::new(ring(4.0), Seconds::new(0.4))
            .with_async_load(0.2)
            .with_seed(11);
        let a = PdpSimulator::new(
            &light_set(),
            config,
            FrameFormat::paper_default(),
            PdpVariant::Modified,
        )
        .run();
        let b = PdpSimulator::new(
            &light_set(),
            config,
            FrameFormat::paper_default(),
            PdpVariant::Modified,
        )
        .run();
        assert_eq!(a.completed(), b.completed());
        assert_eq!(a.events, b.events);
    }

    #[test]
    fn token_loss_recovers_and_hurts_under_pressure() {
        let config = SimConfig::new(ring(4.0), Seconds::new(1.0))
            .with_token_loss(20.0, Seconds::from_millis(2.0));
        let report = PdpSimulator::new(
            &light_set(),
            config,
            FrameFormat::paper_default(),
            PdpVariant::Standard,
        )
        .run();
        assert!(report.token_losses > 5, "losses: {}", report.token_losses);
        assert!(report.completed() > 50, "{report}");

        // Brutal losses break the fast stream.
        let config = SimConfig::new(ring(4.0), Seconds::new(1.0))
            .with_token_loss(100.0, Seconds::from_millis(15.0));
        let report = PdpSimulator::new(
            &light_set(),
            config,
            FrameFormat::paper_default(),
            PdpVariant::Standard,
        )
        .run();
        assert!(report.deadline_misses() > 0, "{report}");
    }

    #[test]
    fn trace_captures_pdp_events() {
        use crate::TraceKind;
        let config = SimConfig::new(ring(4.0), Seconds::new(0.1))
            .with_async_load(0.2)
            .with_trace(500_000);
        let report = PdpSimulator::new(
            &light_set(),
            config,
            FrameFormat::paper_default(),
            PdpVariant::Standard,
        )
        .run();
        assert_eq!(report.trace_dropped, 0, "raise capacity: trace truncated");
        assert!(!report.trace.is_empty());
        assert!(report.trace.windows(2).all(|w| w[0].at <= w[1].at));
        // Both traffic classes show up.
        let sync_frames = report
            .trace
            .iter()
            .filter(|e| {
                matches!(
                    e.kind,
                    TraceKind::FrameStart {
                        synchronous: true,
                        ..
                    }
                )
            })
            .count();
        let async_frames = report
            .trace
            .iter()
            .filter(|e| {
                matches!(
                    e.kind,
                    TraceKind::FrameStart {
                        synchronous: false,
                        ..
                    }
                )
            })
            .count();
        assert!(sync_frames > 0);
        assert!(async_frames as u64 == report.async_frames_sent);
        let completes = report
            .trace
            .iter()
            .filter(|e| matches!(e.kind, TraceKind::MessageComplete { .. }))
            .count();
        assert_eq!(completes as u64, report.completed());
    }

    #[test]
    fn quantized_levels_degrade_the_fast_stream() {
        // With a single level the MAC falls back to position-arbitrated,
        // frame-granular round robin. That is *milder* than the
        // conservative one-whole-message-per-peer analysis (which rejects
        // this set at one level — see the core tests), but it must still
        // cost the fast stream: its worst response cannot beat the
        // prioritized run's.
        let set = MessageSet::new(vec![
            SyncStream::new(Seconds::from_millis(20.0), Bits::new(2_000)),
            SyncStream::new(Seconds::from_millis(50.0), Bits::new(200_000)),
        ])
        .unwrap();
        let ring = RingConfig::ieee_802_5(2, Bandwidth::from_mbps(1.0));
        let config = SimConfig::new(ring, Seconds::new(1.0));
        let build = |levels: Option<usize>| {
            let sim = PdpSimulator::new(
                &set,
                config,
                FrameFormat::paper_default(),
                PdpVariant::Standard,
            );
            match levels {
                Some(k) => sim.with_priority_levels(k),
                None => sim,
            }
            .run()
        };
        let prioritized = build(None);
        assert_eq!(
            prioritized.per_stream[0].deadline_misses, 0,
            "{prioritized}"
        );
        let flattened = build(Some(1));
        let w_pri = prioritized.per_stream[0].worst_response().unwrap();
        let w_flat = flattened.per_stream[0].worst_response().unwrap();
        assert!(
            w_flat >= w_pri,
            "round robin cannot beat dedicated priority: {w_flat} < {w_pri}"
        );
        // Two levels behave exactly like unlimited for a two-stream set.
        let restored = build(Some(2));
        assert_eq!(restored.per_stream[0].deadline_misses, 0, "{restored}");
        assert_eq!(
            restored.per_stream[0].worst_response(),
            prioritized.per_stream[0].worst_response()
        );
    }

    #[test]
    fn variant_accessor() {
        let config = SimConfig::new(ring(4.0), Seconds::new(0.1));
        let sim = PdpSimulator::new(
            &light_set(),
            config,
            FrameFormat::paper_default(),
            PdpVariant::Modified,
        );
        assert_eq!(sim.variant(), PdpVariant::Modified);
    }
}
