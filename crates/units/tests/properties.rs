//! Property-based tests for the unit types.

use proptest::prelude::*;
use ringrt_units::{Bandwidth, Bits, Seconds, SimDuration, SimTime};

proptest! {
    /// Addition of durations is commutative and associative (exactly, for
    /// integer simulator durations).
    #[test]
    fn sim_duration_add_commutative(a in 0u64..1u64<<40, b in 0u64..1u64<<40) {
        let (a, b) = (SimDuration::from_picos(a), SimDuration::from_picos(b));
        prop_assert_eq!(a + b, b + a);
    }

    #[test]
    fn sim_duration_add_associative(
        a in 0u64..1u64<<40,
        b in 0u64..1u64<<40,
        c in 0u64..1u64<<40,
    ) {
        let (a, b, c) = (
            SimDuration::from_picos(a),
            SimDuration::from_picos(b),
            SimDuration::from_picos(c),
        );
        prop_assert_eq!((a + b) + c, a + (b + c));
    }

    /// `SimTime` advance/rewind round-trips exactly.
    #[test]
    fn sim_time_add_sub_roundtrip(t in 0u64..1u64<<50, d in 0u64..1u64<<40) {
        let t0 = SimTime::from_picos(t);
        let d = SimDuration::from_picos(d);
        prop_assert_eq!((t0 + d) - d, t0);
        prop_assert_eq!((t0 + d) - t0, d);
    }

    /// Seconds → SimDuration conversion is monotone.
    #[test]
    fn seconds_to_sim_monotone(a in 0.0f64..1e3, b in 0.0f64..1e3) {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        let dlo = SimDuration::from_seconds(Seconds::new(lo));
        let dhi = SimDuration::from_seconds(Seconds::new(hi));
        prop_assert!(dlo <= dhi);
    }

    /// Seconds → SimDuration conversion round-trips within half a picosecond.
    #[test]
    fn seconds_sim_roundtrip(s in 0.0f64..1e3) {
        let d = SimDuration::from_seconds(Seconds::new(s));
        let back = d.as_seconds().as_secs_f64();
        prop_assert!((back - s).abs() <= 0.51e-12 + s.abs() * 1e-14, "{} vs {}", back, s);
    }

    /// Transmission time scales linearly with size and inversely with rate.
    #[test]
    fn transmission_time_linear(bits in 1u64..1u64<<30, mbps in 1.0f64..1000.0) {
        let bw = Bandwidth::from_mbps(mbps);
        let one = bw.transmission_time(Bits::new(bits));
        let two = bw.transmission_time(Bits::new(bits * 2));
        prop_assert!((two.as_secs_f64() - 2.0 * one.as_secs_f64()).abs() < 1e-12);
        let double_rate = Bandwidth::from_mbps(mbps * 2.0);
        let halved = double_rate.transmission_time(Bits::new(bits));
        prop_assert!((halved.as_secs_f64() * 2.0 - one.as_secs_f64()).abs() < 1e-12);
    }

    /// `div_floor`/`div_ceil` satisfy the frame-splitting invariants:
    /// `L ≤ K ≤ L + 1` and `K` frames always cover the message.
    #[test]
    fn frame_split_invariants(msg in 0u64..1u64<<32, frame in 1u64..1u64<<16) {
        let (m, f) = (Bits::new(msg), Bits::new(frame));
        let l = m.div_floor(f);
        let k = m.div_ceil(f);
        prop_assert!(l <= k && k <= l + 1);
        prop_assert!(k * frame >= msg);
        if msg > 0 {
            prop_assert!((k - 1) * frame < msg);
        }
    }

    /// `bits_in` never claims more bits than the window can carry.
    #[test]
    fn bits_in_conservative(us in 0.0f64..1e6, mbps in 1.0f64..1000.0) {
        let bw = Bandwidth::from_mbps(mbps);
        let window = Seconds::from_micros(us);
        let got = bw.bits_in(window);
        let raw = window.as_secs_f64() * bw.as_bps();
        prop_assert!(got.as_f64() <= raw + raw * 1e-8 + 1e-6);
    }

    /// Seconds ordering matches the ordering of the raw values.
    #[test]
    fn seconds_ordering(a in -1e6f64..1e6, b in -1e6f64..1e6) {
        let (sa, sb) = (Seconds::new(a), Seconds::new(b));
        prop_assert_eq!(sa < sb, a < b);
        prop_assert_eq!(sa.total_cmp(&sb), a.total_cmp(&b));
    }
}
