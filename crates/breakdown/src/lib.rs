//! Average-breakdown-utilization estimation (paper §6).
//!
//! The paper compares the two protocols by their **average breakdown
//! utilization** (ABU): the expected utilization of message sets lying in
//! the *saturated schedulable class* — sets that are schedulable but become
//! unschedulable if any message grows. The estimate is Monte-Carlo:
//!
//! 1. draw a random message set from a population (`ringrt-workload`);
//! 2. scale every message length by a common factor `α` and binary-search
//!    the schedulability boundary `α*` ([`SaturationSearch`]) — the scaled
//!    set sits in the saturated class;
//! 3. record its utilization `U(α*·M)`; repeat and average
//!    ([`BreakdownEstimator`]).
//!
//! The [`sweep`] module packages the parameter sweeps behind the paper's
//! Figure 1 (ABU vs. bandwidth for the three protocols) and the supporting
//! TTRT / frame-size experiments.
//!
//! # Examples
//!
//! ```
//! use rand::SeedableRng;
//! use ringrt_breakdown::BreakdownEstimator;
//! use ringrt_core::ttp::TtpAnalyzer;
//! use ringrt_model::RingConfig;
//! use ringrt_units::Bandwidth;
//! use ringrt_workload::MessageSetGenerator;
//!
//! let ring = RingConfig::fddi(20, Bandwidth::from_mbps(100.0));
//! let analyzer = TtpAnalyzer::with_defaults(ring);
//! let estimator = BreakdownEstimator::new(MessageSetGenerator::paper_population(20), 20);
//! let mut rng = rand::rngs::StdRng::seed_from_u64(42);
//! let estimate = estimator.estimate(&analyzer, ring.bandwidth(), &mut rng);
//! assert!(estimate.mean > 0.3 && estimate.mean < 1.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod sweep;
pub mod table;

mod estimator;
mod saturation;
mod stats;

pub use estimator::{BreakdownEstimate, BreakdownEstimator};
pub use saturation::{SaturatedSet, SaturationSearch};
pub use stats::SampleStats;
