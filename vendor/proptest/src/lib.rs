//! Vendored, dependency-free subset of the `proptest` API.
//!
//! The ringrt workspace builds offline, so the slice of proptest its
//! property tests use is reimplemented here: the [`proptest!`] macro,
//! `prop_assert*`/`prop_assume!`, range/tuple/collection strategies,
//! [`any`](arbitrary::any), and a deterministic test runner.
//!
//! Semantics differ from real proptest in one deliberate way: there is no
//! shrinking. Failing inputs are reported verbatim (the runner seeds its
//! RNG from the test name, so failures reproduce exactly on re-run).
//!
//! [`proptest!`]: crate::proptest

#![forbid(unsafe_code)]

pub mod test_runner {
    //! Test configuration and the deterministic case RNG.

    /// Per-test configuration (only `cases` is honored).
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of random cases to run per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` random cases.
        #[must_use]
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    /// FNV-1a hash of a string, used to derive a per-test RNG seed from the
    /// test's module path and name.
    #[must_use]
    pub fn fnv1a(s: &str) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in s.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        h
    }

    /// Deterministic xoshiro256** generator driving strategy sampling.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        s: [u64; 4],
    }

    impl TestRng {
        /// Builds a generator whose stream is a pure function of `seed`.
        #[must_use]
        pub fn deterministic(seed: u64) -> Self {
            let mut sm = seed;
            let mut s = [0u64; 4];
            for w in &mut s {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                *w = z ^ (z >> 31);
            }
            TestRng { s }
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }

        /// Uniform draw from `[0, 1)`.
        pub fn next_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }

        /// Uniform draw from `[0, bound)`; `bound` must be nonzero.
        pub fn below(&mut self, bound: u64) -> u64 {
            assert!(bound > 0, "below(0)");
            ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
        }
    }
}

pub mod strategy {
    //! The [`Strategy`] trait and combinators.

    use crate::test_runner::TestRng;
    use core::ops::{Range, RangeInclusive};

    /// A recipe for generating random values of an associated type.
    ///
    /// Unlike real proptest there is no value tree or shrinking; a strategy
    /// is simply a sampler.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Draws one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            (**self).sample(rng)
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn sample(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.sample(rng))
        }
    }

    macro_rules! impl_int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    let lo = self.start as i128;
                    let hi = self.end as i128;
                    let span = (hi - lo) as u128;
                    assert!(span > 0, "empty range strategy");
                    let v = ((u128::from(rng.next_u64()) * span) >> 64) as i128;
                    (lo + v) as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    let lo = *self.start() as i128;
                    let hi = *self.end() as i128;
                    let span = (hi - lo + 1) as u128;
                    let v = ((u128::from(rng.next_u64()) * span) >> 64) as i128;
                    (lo + v) as $t
                }
            }
        )*};
    }
    impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for Range<f64> {
        type Value = f64;
        fn sample(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty range strategy");
            let v = self.start + rng.next_f64() * (self.end - self.start);
            if v >= self.end {
                self.start
            } else {
                v
            }
        }
    }

    impl Strategy for RangeInclusive<f64> {
        type Value = f64;
        fn sample(&self, rng: &mut TestRng) -> f64 {
            let (lo, hi) = (*self.start(), *self.end());
            (lo + rng.next_f64() * (hi - lo)).min(hi)
        }
    }

    impl Strategy for Range<f32> {
        type Value = f32;
        fn sample(&self, rng: &mut TestRng) -> f32 {
            (f64::from(self.start)..f64::from(self.end)).sample(rng) as f32
        }
    }

    macro_rules! impl_tuple_strategy {
        ($(($($name:ident : $idx:tt),+))*) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.sample(rng),)+)
                }
            }
        )*};
    }
    impl_tuple_strategy! {
        (A: 0, B: 1)
        (A: 0, B: 1, C: 2)
        (A: 0, B: 1, C: 2, D: 3)
        (A: 0, B: 1, C: 2, D: 3, E: 4)
    }

    /// Strategy yielding a fixed value every time.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }
}

pub mod arbitrary {
    //! Default strategies for common types ([`any`]).

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use core::marker::PhantomData;

    /// Types with a canonical full-range strategy.
    pub trait Arbitrary: Sized {
        /// Draws one arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_f64()
        }
    }

    impl Arbitrary for crate::sample::Index {
        fn arbitrary(rng: &mut TestRng) -> Self {
            crate::sample::Index::new(rng.next_u64())
        }
    }

    /// Strategy returned by [`any`].
    #[derive(Debug, Clone, Copy)]
    pub struct Any<T>(PhantomData<fn() -> T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The canonical strategy for `T`.
    #[must_use]
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

pub mod collection {
    //! Collection strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use core::ops::Range;

    /// Strategy for `Vec<T>` with uniformly chosen length.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.end - self.size.start) as u64;
            let len = self.size.start
                + if span == 0 {
                    0
                } else {
                    rng.below(span) as usize
                };
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// Vectors of `element` values with length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "empty size range");
        VecStrategy { element, size }
    }
}

pub mod array {
    //! Fixed-size array strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    macro_rules! uniform_array_strategy {
        ($($fn_name:ident, $struct_name:ident, $n:expr;)*) => {$(
            /// Strategy for `[T; N]` built by [`$fn_name`].
            #[derive(Debug, Clone)]
            pub struct $struct_name<S>(S);

            impl<S: Strategy> Strategy for $struct_name<S> {
                type Value = [S::Value; $n];
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    core::array::from_fn(|_| self.0.sample(rng))
                }
            }

            /// An array of `$n` values drawn from `element`.
            pub fn $fn_name<S: Strategy>(element: S) -> $struct_name<S> {
                $struct_name(element)
            }
        )*};
    }

    uniform_array_strategy! {
        uniform4, UniformArray4, 4;
        uniform6, UniformArray6, 6;
        uniform8, UniformArray8, 8;
    }
}

pub mod sample {
    //! Sampling helper types.

    /// An index into a collection of yet-unknown size, mirroring
    /// `proptest::sample::Index`: draw it arbitrarily, then project it onto
    /// a concrete length with [`Index::index`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct Index(u64);

    impl Index {
        pub(crate) fn new(raw: u64) -> Self {
            Index(raw)
        }

        /// Projects onto `[0, size)`.
        ///
        /// # Panics
        ///
        /// Panics if `size` is zero.
        #[must_use]
        pub fn index(&self, size: usize) -> usize {
            assert!(size > 0, "Index::index(0)");
            ((u128::from(self.0) * size as u128) >> 64) as usize
        }
    }
}

pub mod prelude {
    //! One-stop import mirroring `proptest::prelude`.

    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};

    /// Alias of the crate root, so `prop::collection::vec(..)` etc. work.
    pub mod prop {
        pub use crate::array;
        pub use crate::collection;
        pub use crate::sample;
        pub use crate::strategy;
    }
}

/// Asserts a condition inside a property (plain `assert!` here: failures
/// abort the test without shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Skips the current case when its inputs don't satisfy a precondition.
/// (Skipped cases count toward the case budget, unlike real proptest.)
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(, $($fmt:tt)*)?) => {
        if !($cond) {
            return;
        }
    };
}

/// Declares property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running `cases` sampled instances of `body`.
///
/// Supports the `#![proptest_config(..)]` header the real macro accepts.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr)
      $( $(#[$meta:meta])*
         fn $name:ident ( $($arg:ident in $strat:expr),* $(,)? ) $body:block
      )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config = $cfg;
                let mut __rng = $crate::test_runner::TestRng::deterministic(
                    $crate::test_runner::fnv1a(concat!(module_path!(), "::", stringify!($name))),
                );
                for __case in 0..__config.cases {
                    $(
                        let $arg =
                            $crate::strategy::Strategy::sample(&($strat), &mut __rng);
                    )*
                    let __case_fn = move || $body;
                    __case_fn();
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_sample_in_bounds() {
        let mut rng = crate::test_runner::TestRng::deterministic(1);
        for _ in 0..1000 {
            let v = Strategy::sample(&(3u64..9), &mut rng);
            assert!((3..9).contains(&v));
            let f = Strategy::sample(&(-2.0f64..2.0), &mut rng);
            assert!((-2.0..2.0).contains(&f));
        }
    }

    #[test]
    fn vec_strategy_lengths() {
        let mut rng = crate::test_runner::TestRng::deterministic(2);
        for _ in 0..200 {
            let v = Strategy::sample(&prop::collection::vec(0u8..8, 1..5), &mut rng);
            assert!((1..5).contains(&v.len()));
            assert!(v.iter().all(|&b| b < 8));
        }
    }

    #[test]
    fn index_projects_in_range() {
        let mut rng = crate::test_runner::TestRng::deterministic(3);
        for _ in 0..200 {
            let idx: crate::sample::Index = crate::arbitrary::Arbitrary::arbitrary(&mut rng);
            assert!(idx.index(7) < 7);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// The macro itself: tuples, maps, assume, and assertions.
        #[test]
        fn macro_smoke(pair in (0u64..100, 1u64..50), v in prop::collection::vec(0u8..4, 1..6)) {
            prop_assume!(pair.0 != 13);
            prop_assert!(pair.0 < 100 && pair.1 < 50);
            prop_assert_eq!(v.len(), v.len());
            prop_assert_ne!(v.len(), 0);
        }
    }

    #[test]
    fn deterministic_runs() {
        let mut a = crate::test_runner::TestRng::deterministic(9);
        let mut b = crate::test_runner::TestRng::deterministic(9);
        for _ in 0..50 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }
}
