//! Transmission rates.

use core::fmt;

use crate::{Bits, Seconds};

/// A transmission rate in bits per second.
///
/// The paper sweeps the ring bandwidth `BW` from 1 to 1000 Mbps; all
/// conversions between data sizes and transmission times go through this
/// type, e.g. `C_i = C_i^b / BW` (paper eq. 2).
///
/// # Examples
///
/// ```
/// use ringrt_units::{Bandwidth, Bits};
///
/// let bw = Bandwidth::from_mbps(100.0);
/// assert_eq!(bw.as_bps(), 100_000_000.0);
/// // One FDDI-style 112-bit overhead block at 100 Mbps takes 1.12 µs.
/// let t = bw.transmission_time(Bits::new(112));
/// assert!((t.as_micros() - 1.12).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd)]
pub struct Bandwidth(f64);

impl Bandwidth {
    /// Creates a rate from bits per second.
    ///
    /// # Panics
    ///
    /// Panics if `bps` is not a finite, strictly positive number.
    #[must_use]
    pub fn from_bps(bps: f64) -> Self {
        assert!(
            bps.is_finite() && bps > 0.0,
            "bandwidth must be finite and positive, got {bps}"
        );
        Bandwidth(bps)
    }

    /// Creates a rate from kilobits per second (10³ bits/s).
    #[must_use]
    pub fn from_kbps(kbps: f64) -> Self {
        Self::from_bps(kbps * 1e3)
    }

    /// Creates a rate from megabits per second (10⁶ bits/s).
    #[must_use]
    pub fn from_mbps(mbps: f64) -> Self {
        Self::from_bps(mbps * 1e6)
    }

    /// Creates a rate from gigabits per second (10⁹ bits/s).
    #[must_use]
    pub fn from_gbps(gbps: f64) -> Self {
        Self::from_bps(gbps * 1e9)
    }

    /// Returns the rate in bits per second.
    #[must_use]
    pub fn as_bps(self) -> f64 {
        self.0
    }

    /// Returns the rate in megabits per second.
    #[must_use]
    pub fn as_mbps(self) -> f64 {
        self.0 / 1e6
    }

    /// Time to put one bit on the medium.
    #[must_use]
    pub fn bit_time(self) -> Seconds {
        Seconds::new(1.0 / self.0)
    }

    /// Time to transmit `size` bits at this rate (paper eq. 2).
    #[must_use]
    pub fn transmission_time(self, size: Bits) -> Seconds {
        Seconds::new(size.as_f64() / self.0)
    }

    /// Number of whole bits transmittable within `window`
    /// (used by the simulator to size residual frames).
    #[must_use]
    pub fn bits_in(self, window: Seconds) -> Bits {
        let raw = window.as_secs_f64().max(0.0) * self.0;
        // Tolerate float error when the window is an exact bit multiple:
        // 100 µs at 1 Mbps must be 100 bits, not 99.
        let rounded = raw.round();
        let bits = if (raw - rounded).abs() < 1e-9 * rounded.max(1.0) {
            rounded
        } else {
            raw.floor()
        };
        Bits::new(bits as u64)
    }
}

impl fmt::Display for Bandwidth {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1e9 {
            write!(f, "{:.3} Gbps", self.0 / 1e9)
        } else if self.0 >= 1e6 {
            write!(f, "{:.3} Mbps", self.0 / 1e6)
        } else if self.0 >= 1e3 {
            write!(f, "{:.3} kbps", self.0 / 1e3)
        } else {
            write!(f, "{:.3} bps", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_scale() {
        assert_eq!(Bandwidth::from_kbps(1.0).as_bps(), 1e3);
        assert_eq!(Bandwidth::from_mbps(1.0).as_bps(), 1e6);
        assert_eq!(Bandwidth::from_gbps(1.0).as_bps(), 1e9);
        assert_eq!(Bandwidth::from_gbps(1.0).as_mbps(), 1e3);
    }

    #[test]
    fn bit_time_inverse() {
        let bw = Bandwidth::from_mbps(4.0);
        assert!((bw.bit_time().as_secs_f64() - 0.25e-6).abs() < 1e-18);
    }

    #[test]
    fn transmission_time_eq2() {
        // Paper eq. (2): C_i = C_i^b / BW.
        let bw = Bandwidth::from_mbps(10.0);
        let t = bw.transmission_time(Bits::new(624));
        assert!((t.as_micros() - 62.4).abs() < 1e-9);
        assert_eq!(bw.transmission_time(Bits::ZERO), Seconds::ZERO);
    }

    #[test]
    fn bits_in_window() {
        let bw = Bandwidth::from_mbps(1.0);
        assert_eq!(bw.bits_in(Seconds::from_micros(100.0)), Bits::new(100));
        assert_eq!(bw.bits_in(Seconds::ZERO), Bits::ZERO);
        assert_eq!(bw.bits_in(Seconds::new(-1.0)), Bits::ZERO);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_bandwidth_rejected() {
        let _ = Bandwidth::from_bps(0.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn negative_bandwidth_rejected() {
        let _ = Bandwidth::from_mbps(-5.0);
    }

    #[test]
    fn display() {
        assert_eq!(Bandwidth::from_mbps(100.0).to_string(), "100.000 Mbps");
        assert_eq!(Bandwidth::from_bps(500.0).to_string(), "500.000 bps");
        assert_eq!(Bandwidth::from_gbps(1.0).to_string(), "1.000 Gbps");
        assert_eq!(Bandwidth::from_kbps(64.0).to_string(), "64.000 kbps");
    }
}
