//! Vendored, dependency-free subset of the `rand` 0.8 API.
//!
//! The ringrt workspace builds in offline environments where crates.io is
//! unreachable, so the handful of `rand` items the crates actually use is
//! reimplemented here: the [`Rng`]/[`RngCore`]/[`SeedableRng`] traits,
//! uniform range sampling, and a deterministic [`rngs::StdRng`]
//! (xoshiro256** seeded through SplitMix64).
//!
//! Determinism is part of the contract: all ringrt experiments seed their
//! generators explicitly, and identical seeds must reproduce identical
//! message sets across runs and platforms.

#![forbid(unsafe_code)]

use core::ops::{Range, RangeInclusive};

/// Low-level source of randomness: a stream of `u64` words.
pub trait RngCore {
    /// Returns the next word of the stream.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits (upper half of [`next_u64`]).
    ///
    /// [`next_u64`]: RngCore::next_u64
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// User-facing sampling methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Samples a value of type `T` from its standard distribution
    /// (`f64`/`f32` uniform in `[0, 1)`, integers and `bool` uniform over
    /// their full range).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Samples uniformly from a range (`lo..hi` or `lo..=hi`).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T: SampleUniform, B: SampleRange<T>>(&mut self, range: B) -> T {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= p <= 1.0`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool p out of range: {p}");
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Types samplable from their "standard" distribution via [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits → uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Types uniformly samplable from a range via [`Rng::gen_range`].
pub trait SampleUniform: Sized + PartialOrd {
    /// Draws one value from `[lo, hi)` (`hi` included iff `inclusive`).
    fn sample_uniform<R: RngCore + ?Sized>(
        rng: &mut R,
        lo: Self,
        hi: Self,
        inclusive: bool,
    ) -> Self;
}

/// Range forms accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_uniform(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        T::sample_uniform(rng, lo, hi, true)
    }
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_uniform<R: RngCore + ?Sized>(
                rng: &mut R,
                lo: Self,
                hi: Self,
                inclusive: bool,
            ) -> Self {
                let lo_w = lo as i128;
                let hi_w = hi as i128;
                let span = (hi_w - lo_w + i128::from(inclusive)) as u128;
                assert!(span > 0, "cannot sample from empty range {lo}..{hi}");
                // Multiply-shift keeps the draw in [0, span) without bias
                // noticeable at these span sizes.
                let v = ((rng.next_u64() as u128).wrapping_mul(span) >> 64) as i128;
                (lo_w + v) as $t
            }
        }
    )*};
}
impl_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_uniform<R: RngCore + ?Sized>(
        rng: &mut R,
        lo: Self,
        hi: Self,
        inclusive: bool,
    ) -> Self {
        assert!(
            lo < hi || (inclusive && lo <= hi),
            "cannot sample from empty range {lo}..{hi}"
        );
        let u = f64::sample_standard(rng);
        let v = lo + u * (hi - lo);
        if v >= hi && !inclusive {
            lo
        } else {
            v.min(hi)
        }
    }
}

impl SampleUniform for f32 {
    fn sample_uniform<R: RngCore + ?Sized>(
        rng: &mut R,
        lo: Self,
        hi: Self,
        inclusive: bool,
    ) -> Self {
        f64::sample_uniform(rng, f64::from(lo), f64::from(hi), inclusive) as f32
    }
}

/// Deterministically constructible generators, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Concrete generator types.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256** with SplitMix64
    /// seed expansion. Deterministic, fast, and adequate for Monte-Carlo
    /// workload generation (not cryptographic).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut s = [0u64; 4];
            for w in &mut s {
                *w = splitmix64(&mut sm);
            }
            // xoshiro's state must not be all zero; SplitMix64 cannot
            // produce four zero words from any seed, but keep the guard.
            if s == [0; 4] {
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_across_instances() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    use super::RngCore;

    #[test]
    fn seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn gen_f64_in_unit_interval() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: f64 = r.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut r = StdRng::seed_from_u64(9);
        for _ in 0..10_000 {
            let v = r.gen_range(10u64..20);
            assert!((10..20).contains(&v));
            let w = r.gen_range(-5i32..=5);
            assert!((-5..=5).contains(&w));
            let f = r.gen_range(1.5f64..2.5);
            assert!((1.5..2.5).contains(&f));
        }
    }

    #[test]
    fn gen_range_covers_span() {
        let mut r = StdRng::seed_from_u64(11);
        let mut seen = [false; 8];
        for _ in 0..1_000 {
            seen[r.gen_range(0usize..8)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn works_through_unsized_refs() {
        fn draw<R: Rng + ?Sized>(rng: &mut R) -> f64 {
            rng.gen()
        }
        let mut r = StdRng::seed_from_u64(3);
        let dyn_ref: &mut StdRng = &mut r;
        let x = draw(dyn_ref);
        assert!((0.0..1.0).contains(&x));
    }

    #[test]
    fn gen_bool_extremes() {
        let mut r = StdRng::seed_from_u64(5);
        assert!(!r.gen_bool(0.0));
        assert!(r.gen_bool(1.0));
    }
}
