//! Vendored, dependency-free subset of the `criterion` benchmarking API.
//!
//! The ringrt workspace builds offline, so the criterion surface its
//! benches use is reimplemented here: `criterion_group!`/`criterion_main!`,
//! [`Criterion::benchmark_group`], per-group `sample_size`/`throughput`,
//! `bench_function`/`bench_with_input`, and [`BenchmarkId`].
//!
//! Statistics are deliberately simple — per-sample wall-clock means with a
//! min/mean/max summary line — but calibration (batching short benchmarks
//! until a sample is long enough to time reliably) mirrors the real tool,
//! so relative comparisons between kernels remain meaningful.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Top-level benchmark driver; collects groups and prints results.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\n== {name} ==");
        BenchmarkGroup {
            _parent: self,
            name,
            sample_size: 20,
            throughput: None,
        }
    }

    /// Benchmarks a single function outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl IntoLabel, mut f: F) {
        let mut b = Bencher::new(20);
        f(&mut b);
        report("", &id.into_label(), &b, None);
    }
}

/// A set of benchmarks sharing a name prefix and configuration.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timing samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Declares the work per iteration so results can be rated (bytes/s or
    /// elements/s).
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Times `f` under the given label.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl IntoLabel,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher::new(self.sample_size);
        f(&mut b);
        report(&self.name, &id.into_label(), &b, self.throughput);
        self
    }

    /// Times `f`, passing it a borrowed input.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl IntoLabel,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher::new(self.sample_size);
        f(&mut b, input);
        report(&self.name, &id.into_label(), &b, self.throughput);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Work-per-iteration declaration for throughput reporting.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// A benchmark label of the form `function/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// Label combining a function name and a parameter value.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            label: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Label from a parameter value alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

/// Conversion of the various accepted label types.
pub trait IntoLabel {
    /// The display label.
    fn into_label(self) -> String;
}

impl IntoLabel for BenchmarkId {
    fn into_label(self) -> String {
        self.label
    }
}

impl IntoLabel for String {
    fn into_label(self) -> String {
        self
    }
}

impl IntoLabel for &str {
    fn into_label(self) -> String {
        self.to_owned()
    }
}

/// Collected timing state for one benchmark.
#[derive(Debug)]
pub struct Bencher {
    sample_size: usize,
    samples_ns: Vec<f64>,
    iters_per_sample: u64,
}

impl Bencher {
    fn new(sample_size: usize) -> Self {
        Bencher {
            sample_size,
            samples_ns: Vec::new(),
            iters_per_sample: 0,
        }
    }

    /// Times repeated calls of `f`.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Calibrate: batch iterations until one sample takes >= 1 ms (or
        // the batch is already large), so Instant overhead stays < 0.1 %.
        let mut per: u64 = 1;
        loop {
            let start = Instant::now();
            for _ in 0..per {
                std::hint::black_box(f());
            }
            let elapsed = start.elapsed();
            if elapsed >= Duration::from_millis(1) || per >= 1 << 22 {
                break;
            }
            per = per.saturating_mul(8);
        }
        self.iters_per_sample = per;
        self.samples_ns.clear();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..per {
                std::hint::black_box(f());
            }
            let elapsed = start.elapsed();
            self.samples_ns.push(elapsed.as_nanos() as f64 / per as f64);
        }
    }

    fn stats(&self) -> Option<(f64, f64, f64)> {
        if self.samples_ns.is_empty() {
            return None;
        }
        let min = self
            .samples_ns
            .iter()
            .copied()
            .fold(f64::INFINITY, f64::min);
        let max = self.samples_ns.iter().copied().fold(0.0f64, f64::max);
        let mean = self.samples_ns.iter().sum::<f64>() / self.samples_ns.len() as f64;
        Some((min, mean, max))
    }
}

fn human_ns(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.1} ns")
    } else if ns < 1e6 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.3} s", ns / 1e9)
    }
}

fn report(group: &str, label: &str, b: &Bencher, throughput: Option<Throughput>) {
    let full = if group.is_empty() {
        label.to_owned()
    } else {
        format!("{group}/{label}")
    };
    match b.stats() {
        Some((min, mean, max)) => {
            let mut line = format!(
                "{full:<44} time: [{} {} {}]",
                human_ns(min),
                human_ns(mean),
                human_ns(max)
            );
            if let Some(t) = throughput {
                let per_sec = match t {
                    Throughput::Bytes(n) => {
                        format!("{:.1} MiB/s", n as f64 / (mean / 1e9) / (1024.0 * 1024.0))
                    }
                    Throughput::Elements(n) => {
                        format!("{:.0} elem/s", n as f64 / (mean / 1e9))
                    }
                };
                line.push_str(&format!("  thrpt: {per_sec}"));
            }
            println!("{line}");
        }
        None => println!("{full:<44} (no samples)"),
    }
}

/// Declares a function running the listed benchmark targets with a shared
/// [`Criterion`] instance.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main()` invoking the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

/// Opaque value barrier, re-exported for compatibility with benches that
/// import it from criterion rather than `std::hint`.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_collects_samples() {
        let mut b = Bencher::new(3);
        b.iter(|| 1u64 + 1);
        assert_eq!(b.samples_ns.len(), 3);
        let (min, mean, max) = b.stats().unwrap();
        assert!(min <= mean && mean <= max);
        assert!(b.iters_per_sample >= 1);
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("rta", 50).into_label(), "rta/50");
        assert_eq!(BenchmarkId::from_parameter("x").into_label(), "x");
    }

    #[test]
    fn human_units() {
        assert!(human_ns(5.0).ends_with("ns"));
        assert!(human_ns(5.0e3).ends_with("µs"));
        assert!(human_ns(5.0e6).ends_with("ms"));
        assert!(human_ns(5.0e9).ends_with('s'));
    }

    #[test]
    fn group_runs_benchmarks() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("test_group");
        group.sample_size(2).throughput(Throughput::Bytes(64));
        let mut ran = 0;
        group.bench_function("a", |b| {
            b.iter(|| 0u8);
        });
        group.bench_with_input(BenchmarkId::new("b", 1), &7u64, |b, &x| {
            ran += 1;
            b.iter(|| x * 2);
        });
        group.finish();
        assert_eq!(ran, 1);
    }
}
