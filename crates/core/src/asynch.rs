//! Service bounds for **asynchronous** (non-real-time) traffic.
//!
//! The paper's model treats asynchronous messages as best-effort (§3.2) and
//! its criteria only defend the synchronous deadlines *against* them. The
//! complementary question — how much service does asynchronous traffic
//! still get once the synchronous set is admitted? — was studied in the
//! companion literature the paper cites ([11, 27] for the priority token,
//! [8, 19] for the timed token). This module provides the classic bounds:
//!
//! * **PDP** — an asynchronous frame is a lowest-priority "task": its
//!   worst-case response time is the fixed point of
//!   `R = B + C'_async + Σ_j C'_j·⌈R/P_j⌉` over all synchronous streams
//!   ([`pdp_async_response_bound`]); it exists iff the augmented
//!   synchronous utilization is below 1.
//! * **TTP** — per token rotation, asynchronous traffic receives at most
//!   the slack `TTRT − Θ' − Σ h_i` ([`ttp_async_capacity`]), and a station
//!   with queued asynchronous frames waits at most `2·TTRT` for a usable
//!   token ([`ttp_async_access_delay_bound`], Sevcik–Johnson).

use ringrt_model::{MessageSet, StreamId};
use ringrt_units::{Bits, Seconds};

use crate::pdp::{augmented_length, PdpAnalyzer};
use crate::ttp::TtpAnalyzer;

/// Worst-case response time of a single asynchronous frame of
/// `frame_bits` (payload + overhead) under the priority-driven protocol,
/// measured from the instant it reaches the head of its station's queue.
///
/// The bound models the tagged frame contending against **synchronous**
/// traffic only (plus one blocking frame). Other asynchronous senders are
/// its priority peers: each concurrent asynchronous frame can add up to
/// one effective frame time on top of this bound, so under shared
/// asynchronous load treat it as a per-frame floor, not a ceiling (the
/// `exp_async_service` experiment quantifies the gap — a fraction of a
/// percent at 3 % offered load).
///
/// Returns `None` when the synchronous load leaves no guaranteed residual
/// bandwidth (augmented utilization ≥ 1), in which case asynchronous
/// starvation is possible.
///
/// # Examples
///
/// ```
/// use ringrt_core::asynch::pdp_async_response_bound;
/// use ringrt_core::pdp::{PdpAnalyzer, PdpVariant};
/// use ringrt_model::{FrameFormat, MessageSet, RingConfig, SyncStream};
/// use ringrt_units::{Bandwidth, Bits, Seconds};
///
/// let ring = RingConfig::ieee_802_5(2, Bandwidth::from_mbps(4.0));
/// let a = PdpAnalyzer::new(ring, FrameFormat::paper_default(), PdpVariant::Standard);
/// let set = MessageSet::new(vec![
///     SyncStream::new(Seconds::from_millis(20.0), Bits::new(8_000)),
/// ])?;
/// let bound = pdp_async_response_bound(&a, &set, Bits::new(624)).unwrap();
/// assert!(bound > Seconds::ZERO && bound < Seconds::from_millis(20.0));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[must_use]
pub fn pdp_async_response_bound(
    analyzer: &PdpAnalyzer,
    set: &MessageSet,
    frame_bits: Bits,
) -> Option<Seconds> {
    let ring = analyzer.ring();
    let bw = ring.bandwidth();
    let theta = ring.token_circulation_time();
    // One asynchronous frame behaves like one last-priority frame: it pays
    // the header-return stall and one token circulation, like any frame.
    let c_async = bw.transmission_time(frame_bits).max(theta) + theta / 2.0;

    // Augmented synchronous interference.
    let order = set.rm_order();
    let sync: Vec<(Seconds, Seconds)> = order
        .iter()
        .map(|&i| {
            let s = set.stream(StreamId(i));
            (
                augmented_length(s, ring, analyzer.frame(), analyzer.variant()),
                s.period(),
            )
        })
        .collect();
    let u: f64 = sync.iter().map(|&(c, p)| c / p).sum();
    if u >= 1.0 {
        return None;
    }

    // Fixed-point iteration; convergence guaranteed by u < 1. From
    // R = c + B + Σ C'_j·⌈R/P_j⌉ ≤ c + B + Σ C'_j + u·R, the fixed point
    // is bounded by (c + B + Σ C'_j)/(1 − u); exceeding twice that bound
    // signals numeric trouble rather than a real schedule.
    let blocking = analyzer.blocking();
    let total_c: Seconds = sync.iter().map(|&(c, _)| c).sum();
    let cap = Seconds::new((blocking + c_async + total_c).as_secs_f64() / (1.0 - u)) * 2.0;
    let mut r = c_async + blocking;
    for _ in 0..10_000 {
        let mut next = c_async + blocking;
        for &(c, p) in &sync {
            next += c * (r / p).ceil();
        }
        if next <= r + Seconds::new(1e-12 * r.as_secs_f64().max(1e-30)) {
            return Some(next);
        }
        if next > cap {
            return None; // numeric safety net; should be unreachable
        }
        r = next;
    }
    None
}

/// The fraction of ring bandwidth guaranteed to remain for asynchronous
/// traffic per token rotation under the timed token protocol:
/// `(TTRT − Θ' − Σ h_i) / TTRT`, clamped at 0.
///
/// This is the slack the FDDI THT rules hand to asynchronous frames when
/// the token runs on schedule; the paper's §6 explanation of the FDDI
/// curve's good high-bandwidth behaviour rests on this slack staying
/// positive.
#[must_use]
pub fn ttp_async_capacity(analyzer: &TtpAnalyzer, set: &MessageSet) -> f64 {
    let report = analyzer.analyze(set);
    let slack = report.capacity - report.total_allocated;
    (slack / report.ttrt).max(0.0)
}

/// Worst-case wait for a usable token at an asynchronous sender:
/// `2·TTRT` (Sevcik–Johnson inter-visit bound). Independent of the load,
/// provided the protocol constraint holds.
#[must_use]
pub fn ttp_async_access_delay_bound(analyzer: &TtpAnalyzer, set: &MessageSet) -> Seconds {
    analyzer.ttrt_for(set) * 2.0
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pdp::PdpVariant;
    use crate::ttp::TtpAnalyzer;
    use ringrt_model::{FrameFormat, RingConfig, SyncStream};
    use ringrt_units::Bandwidth;

    fn set(streams: &[(f64, u64)]) -> MessageSet {
        MessageSet::new(
            streams
                .iter()
                .map(|&(p, c)| SyncStream::new(Seconds::from_millis(p), Bits::new(c)))
                .collect(),
        )
        .unwrap()
    }

    fn pdp(mbps: f64) -> PdpAnalyzer {
        PdpAnalyzer::new(
            RingConfig::ieee_802_5(4, Bandwidth::from_mbps(mbps)),
            FrameFormat::paper_default(),
            PdpVariant::Standard,
        )
    }

    #[test]
    fn async_bound_grows_with_sync_load() {
        let a = pdp(4.0);
        let light = set(&[(50.0, 10_000)]);
        let heavy = set(&[(50.0, 10_000), (20.0, 20_000), (30.0, 20_000)]);
        let rb_light = pdp_async_response_bound(&a, &light, Bits::new(624)).unwrap();
        let rb_heavy = pdp_async_response_bound(&a, &heavy, Bits::new(624)).unwrap();
        assert!(rb_heavy > rb_light, "{rb_heavy} vs {rb_light}");
    }

    #[test]
    fn async_bound_none_when_sync_saturates() {
        let a = pdp(1.0);
        // ~200 % augmented utilization at 1 Mbps.
        let heavy = set(&[(10.0, 12_000), (10.0, 12_000)]);
        assert!(pdp_async_response_bound(&a, &heavy, Bits::new(624)).is_none());
    }

    #[test]
    fn async_bound_exceeds_blocking_floor() {
        let a = pdp(16.0);
        let s = set(&[(100.0, 1_000)]);
        let bound = pdp_async_response_bound(&a, &s, Bits::new(624)).unwrap();
        // At least the frame's own effective time; no free lunch.
        assert!(bound >= a.blocking());
    }

    #[test]
    fn ttp_capacity_between_zero_and_one() {
        let a = TtpAnalyzer::with_defaults(RingConfig::fddi(4, Bandwidth::from_mbps(100.0)));
        let light = set(&[(20.0, 50_000), (40.0, 50_000)]);
        let cap = ttp_async_capacity(&a, &light);
        assert!(cap > 0.3 && cap < 1.0, "capacity {cap}");
        // Heavier synchronous load shrinks the slack.
        let heavy = set(&[(20.0, 1_000_000), (40.0, 1_000_000)]);
        let cap_heavy = ttp_async_capacity(&a, &heavy);
        assert!(cap_heavy < cap);
    }

    #[test]
    fn ttp_capacity_clamps_at_zero_when_overcommitted() {
        let a = TtpAnalyzer::with_defaults(RingConfig::fddi(2, Bandwidth::from_mbps(100.0)));
        let heavy = set(&[(20.0, 3_000_000), (40.0, 6_000_000)]);
        assert_eq!(ttp_async_capacity(&a, &heavy), 0.0);
    }

    #[test]
    fn ttp_access_delay_is_twice_ttrt() {
        let a = TtpAnalyzer::with_defaults(RingConfig::fddi(4, Bandwidth::from_mbps(100.0)));
        let s = set(&[(20.0, 50_000)]);
        let bound = ttp_async_access_delay_bound(&a, &s);
        let ttrt = a.ttrt_for(&s);
        assert!((bound.as_secs_f64() - 2.0 * ttrt.as_secs_f64()).abs() < 1e-15);
    }
}
