//! End-to-end checks of the constrained-deadline extension (`D_i ≤ P_i`):
//! analysis verdicts, deadline-monotonic priorities, and agreement with the
//! frame-level simulators.

use ringrt::prelude::*;

fn base_streams() -> Vec<SyncStream> {
    vec![
        SyncStream::new(Seconds::from_millis(40.0), Bits::new(20_000)),
        SyncStream::new(Seconds::from_millis(80.0), Bits::new(40_000)),
        SyncStream::new(Seconds::from_millis(160.0), Bits::new(60_000)),
    ]
}

#[test]
fn tightening_deadlines_only_removes_schedulability() {
    let relaxed = MessageSet::new(base_streams()).unwrap();
    let bw = Bandwidth::from_mbps(16.0);
    let pdp = PdpAnalyzer::new(
        RingConfig::ieee_802_5(3, bw),
        FrameFormat::paper_default(),
        PdpVariant::Modified,
    );
    let ttp = TtpAnalyzer::with_defaults(RingConfig::fddi(3, bw));
    assert!(pdp.is_schedulable(&relaxed));
    assert!(ttp.is_schedulable(&relaxed));

    // Mildly constrained (D = P/2): still fine for this light load.
    let halved = MessageSet::new(
        base_streams()
            .into_iter()
            .map(|s| {
                let d = s.period() / 2.0;
                s.with_relative_deadline(d)
            })
            .collect(),
    )
    .unwrap();
    assert!(pdp.is_schedulable(&halved));
    assert!(ttp.is_schedulable(&halved));

    // Savagely constrained (D = P/40): below the service floor.
    let savage = MessageSet::new(
        base_streams()
            .into_iter()
            .map(|s| {
                let d = s.period() / 40.0;
                s.with_relative_deadline(d)
            })
            .collect(),
    )
    .unwrap();
    assert!(!pdp.is_schedulable(&savage));
    assert!(!ttp.is_schedulable(&savage));
}

#[test]
fn dm_priorities_rescue_a_tight_slow_stream() {
    // A slow stream with a tight deadline must outrank a fast stream under
    // deadline-monotonic assignment; under plain RM it would starve.
    let set = MessageSet::new(vec![
        SyncStream::new(Seconds::from_millis(20.0), Bits::new(30_000)),
        SyncStream::new(Seconds::from_millis(200.0), Bits::new(10_000))
            .with_relative_deadline(Seconds::from_millis(8.0)),
    ])
    .unwrap();
    let bw = Bandwidth::from_mbps(16.0);
    let pdp = PdpAnalyzer::new(
        RingConfig::ieee_802_5(2, bw),
        FrameFormat::paper_default(),
        PdpVariant::Modified,
    );
    let report = pdp.analyze(&set);
    assert!(report.schedulable, "{report}");
    // Station 1 (D = 8 ms) holds the top priority rank.
    assert_eq!(report.per_stream[0].stream, StreamId(1));
    // Its response time fits its deadline with room to spare.
    let r = report.per_stream[0].response_time.unwrap();
    assert!(r < Seconds::from_millis(8.0));
}

#[test]
fn simulator_honours_constrained_deadlines() {
    // A set whose analysis passes with D = P but fails with D = P/8 —
    // the simulator must expose exactly that difference as misses, because
    // completions land between D and P.
    let bw = Bandwidth::from_mbps(4.0);
    let ring = RingConfig::ieee_802_5(2, bw);
    let frame = FrameFormat::paper_default();
    let relaxed = MessageSet::new(vec![
        SyncStream::new(Seconds::from_millis(40.0), Bits::new(60_000)),
        SyncStream::new(Seconds::from_millis(80.0), Bits::new(100_000)),
    ])
    .unwrap();
    let tight = MessageSet::new(
        relaxed
            .iter()
            .map(|s| {
                let d = s.period() / 8.0;
                s.with_relative_deadline(d)
            })
            .collect(),
    )
    .unwrap();

    let pdp = PdpAnalyzer::new(ring, frame, PdpVariant::Modified);
    assert!(pdp.is_schedulable(&relaxed));
    assert!(!pdp.is_schedulable(&tight));

    let config = SimConfig::new(ring, Seconds::new(1.0)).with_phasing(Phasing::Synchronized);
    let r_relaxed = PdpSimulator::new(&relaxed, config, frame, PdpVariant::Modified).run();
    assert_eq!(r_relaxed.deadline_misses(), 0, "{r_relaxed}");
    let r_tight = PdpSimulator::new(&tight, config, frame, PdpVariant::Modified).run();
    assert!(
        r_tight.deadline_misses() > 0,
        "tight deadlines should be missed:\n{r_tight}"
    );
    // Same transmissions either way — only the deadline verdicts differ.
    assert_eq!(r_relaxed.completed(), r_tight.completed());
}

#[test]
fn ttp_simulation_respects_deadline_based_allocation() {
    // With D = P/4, the analyzer shrinks TTRT and fattens h_i; a set it
    // still accepts must run miss-free in simulation.
    let bw = Bandwidth::from_mbps(100.0);
    let ring = RingConfig::fddi(3, bw);
    let set = MessageSet::new(vec![
        SyncStream::new(Seconds::from_millis(40.0), Bits::new(100_000))
            .with_relative_deadline(Seconds::from_millis(10.0)),
        SyncStream::new(Seconds::from_millis(80.0), Bits::new(200_000))
            .with_relative_deadline(Seconds::from_millis(20.0)),
        SyncStream::new(Seconds::from_millis(160.0), Bits::new(200_000)),
    ])
    .unwrap();
    let analyzer = TtpAnalyzer::with_defaults(ring);
    let report = analyzer.analyze(&set);
    assert!(report.schedulable, "{report}");
    // TTRT respects the tightest deadline, not the shortest period.
    assert!(report.ttrt <= Seconds::from_millis(5.0) * 1.0000001);

    let sim = TtpSimulator::from_analysis(
        &set,
        SimConfig::new(ring, Seconds::new(1.0))
            .with_phasing(Phasing::Synchronized)
            .with_async_load(0.2),
    )
    .expect("schedulable ⇒ feasible")
    .run();
    assert_eq!(sim.deadline_misses(), 0, "{sim}");
}

#[test]
fn eight_hardware_levels_are_nearly_free() {
    // End-to-end check of the LEVELS finding on a concrete set: quantizing
    // 16 streams onto 8 levels preserves the verdict, 1 level destroys it.
    let streams: Vec<SyncStream> = (0..16)
        .map(|i| {
            SyncStream::new(
                Seconds::from_millis(20.0 + 10.0 * i as f64),
                Bits::new(6_000 + 500 * i as u64),
            )
        })
        .collect();
    let set = MessageSet::new(streams).unwrap();
    let bw = Bandwidth::from_mbps(4.0);
    let base = PdpAnalyzer::new(
        RingConfig::ieee_802_5(set.len(), bw),
        FrameFormat::paper_default(),
        PdpVariant::Modified,
    );
    assert!(base.is_schedulable(&set));
    assert!(base.with_priority_levels(8).is_schedulable(&set));
    assert!(!base.with_priority_levels(1).is_schedulable(&set));
    // The quantized analyzer reports per-stream detail too.
    let report = base.with_priority_levels(8).analyze(&set);
    assert!(report.schedulable);
    assert_eq!(report.per_stream.len(), 16);
}
