//! FAULT — deadline behaviour under token loss (our extension; the paper
//! assumes a fault-free ring, while the standards it analyzes both carry
//! recovery machinery — the 802.5 active monitor and the FDDI claim
//! process).
//!
//! Each protocol runs its home-turf configuration (modified 802.5 at
//! 4 Mbps, FDDI at 100 Mbps) at 70 % of its analytic saturation boundary,
//! then token losses are injected at increasing rates with a fixed
//! recovery time. Reported: deadline-miss ratio vs. loss rate.

use rand::rngs::StdRng;
use rand::SeedableRng;

use ringrt_bench::{banner, ExpOptions};
use ringrt_breakdown::table::{cell, Table};
use ringrt_breakdown::SaturationSearch;
use ringrt_core::pdp::{PdpAnalyzer, PdpVariant};
use ringrt_core::ttp::TtpAnalyzer;
use ringrt_model::{FrameFormat, RingConfig};
use ringrt_sim::{PdpSimulator, SimConfig, TtpSimulator};
use ringrt_units::{Bandwidth, Seconds};
use ringrt_workload::MessageSetGenerator;

fn main() {
    let opts = ExpOptions::from_env();
    banner(
        "FAULT",
        "deadline misses vs token-loss rate (fixed 5 ms recovery)",
        &opts,
    );

    let stations = opts.stations.min(20);
    let horizon = Seconds::new(if opts.quick { 2.0 } else { 5.0 });
    let recovery = Seconds::from_millis(5.0);
    let search = SaturationSearch::with_tolerance(1e-3);
    let generator = MessageSetGenerator::paper_population(stations);
    let mut rng = StdRng::seed_from_u64(opts.seed);
    let base = generator.generate(&mut rng);

    let mut table = Table::new(&[
        "loss_per_sec",
        "protocol",
        "token_losses",
        "completed",
        "misses",
        "miss_ratio",
    ]);

    // FDDI at 100 Mbps, 70 % of boundary.
    let bw = Bandwidth::from_mbps(100.0);
    let fddi_ring = RingConfig::fddi(stations, bw);
    let fddi_analyzer = TtpAnalyzer::with_defaults(fddi_ring);
    let fddi_set = search
        .saturate(&fddi_analyzer, &base, bw)
        .expect("feasible")
        .set
        .with_scaled_lengths(0.7);

    // Modified 802.5 at 4 Mbps, 70 % of boundary.
    let bw4 = Bandwidth::from_mbps(4.0);
    let pdp_ring = RingConfig::ieee_802_5(stations, bw4);
    let frame = FrameFormat::paper_default();
    let pdp_analyzer = PdpAnalyzer::new(pdp_ring, frame, PdpVariant::Modified);
    let pdp_set = search
        .saturate(&pdp_analyzer, &base, bw4)
        .expect("feasible")
        .set
        .with_scaled_lengths(0.7);

    for loss_rate in [0.0, 1.0, 5.0, 20.0, 50.0, 100.0] {
        let fddi_cfg = {
            let c = SimConfig::new(fddi_ring, horizon).with_seed(opts.seed);
            if loss_rate > 0.0 {
                c.with_token_loss(loss_rate, recovery)
            } else {
                c
            }
        };
        let r = TtpSimulator::from_analysis(&fddi_set, fddi_cfg)
            .expect("feasible")
            .run();
        let ratio =
            r.deadline_misses() as f64 / (r.completed() + r.deadline_misses()).max(1) as f64;
        table.push_row(&[
            cell(loss_rate, 1),
            "FDDI@100Mbps".into(),
            r.token_losses.to_string(),
            r.completed().to_string(),
            r.deadline_misses().to_string(),
            cell(ratio, 4),
        ]);

        let pdp_cfg = {
            let c = SimConfig::new(pdp_ring, horizon).with_seed(opts.seed);
            if loss_rate > 0.0 {
                c.with_token_loss(loss_rate, recovery)
            } else {
                c
            }
        };
        let r = PdpSimulator::new(&pdp_set, pdp_cfg, frame, PdpVariant::Modified).run();
        let ratio =
            r.deadline_misses() as f64 / (r.completed() + r.deadline_misses()).max(1) as f64;
        table.push_row(&[
            cell(loss_rate, 1),
            "Mod802.5@4Mbps".into(),
            r.token_losses.to_string(),
            r.completed().to_string(),
            r.deadline_misses().to_string(),
            cell(ratio, 4),
        ]);
    }
    print!("{}", table.to_csv());
    println!();
    println!("# zero losses ⇒ zero misses (the analytic guarantee); misses grow with the");
    println!("# loss rate as recoveries eat the slack the 70 % margin provides.");
}
