//! RESP — per-stream response-time fidelity (our extension): the analytic
//! worst-case response times behind Theorem 4.1 against the worst
//! responses observed by the frame-level simulator under critical-instant
//! phasing and asynchronous pressure.
//!
//! Two properties are expected:
//!
//! * **safety** — the simulated worst response never exceeds the analytic
//!   bound by more than the paper's Θ/2-averaging slack (and never at all
//!   for the modified variant at moderate load);
//! * **tightness** — at critical-instant phasing the bound is not wildly
//!   pessimistic: observed worst cases land within a small factor of it.

use rand::rngs::StdRng;
use rand::SeedableRng;

use ringrt_bench::{banner, ExpOptions};
use ringrt_breakdown::table::{cell, Table};
use ringrt_breakdown::SaturationSearch;
use ringrt_core::pdp::{PdpAnalyzer, PdpVariant};
use ringrt_model::{FrameFormat, RingConfig, StreamId};
use ringrt_sim::{PdpSimulator, Phasing, SimConfig};
use ringrt_units::{Bandwidth, Seconds};
use ringrt_workload::MessageSetGenerator;

fn main() {
    let opts = ExpOptions::from_env();
    banner(
        "RESP",
        "analytic vs simulated worst-case response times (modified 802.5, 4 Mbps)",
        &opts,
    );

    let stations = opts.stations.min(12);
    let bw = Bandwidth::from_mbps(4.0);
    let ring = RingConfig::ieee_802_5(stations, bw);
    let frame = FrameFormat::paper_default();
    let analyzer = PdpAnalyzer::new(ring, frame, PdpVariant::Modified);

    // A set at 80 % of its saturation boundary: loaded but guaranteed.
    let base = MessageSetGenerator::paper_population(stations)
        .generate(&mut StdRng::seed_from_u64(opts.seed));
    let sat = SaturationSearch::with_tolerance(1e-3)
        .saturate(&analyzer, &base, bw)
        .expect("population sets are feasible at 4 Mbps");
    let set = sat.set.with_scaled_lengths(0.8);

    let report = analyzer.analyze(&set);
    assert!(report.schedulable, "80 % of boundary must be schedulable");

    let horizon = Seconds::new(if opts.quick { 3.0 } else { 10.0 });
    let sim = PdpSimulator::new(
        &set,
        SimConfig::new(ring, horizon)
            .with_phasing(Phasing::Synchronized)
            .with_async_load(0.2)
            .with_seed(opts.seed),
        frame,
        PdpVariant::Modified,
    )
    .run();

    let mut table = Table::new(&[
        "stream",
        "period_ms",
        "analytic_R_ms",
        "sim_worst_ms",
        "sim_p99_ms",
        "ratio_sim_over_bound",
    ]);
    let mut worst_ratio = 0.0f64;
    for sr in &report.per_stream {
        let StreamId(station) = sr.stream;
        let stats = &sim.per_stream[station];
        let bound = sr.response_time.expect("schedulable").as_millis();
        let observed = stats
            .worst_response()
            .map(|d| d.as_seconds().as_millis())
            .unwrap_or(0.0);
        let p99 = stats
            .response_quantile(0.99)
            .map(|d| d.as_seconds().as_millis())
            .unwrap_or(0.0);
        let ratio = observed / bound;
        worst_ratio = worst_ratio.max(ratio);
        table.push_row(&[
            format!("S{}", station + 1),
            cell(set.stream(sr.stream).period().as_millis(), 1),
            cell(bound, 3),
            cell(observed, 3),
            cell(p99, 3),
            cell(ratio, 3),
        ]);
    }
    print!("{}", table.to_csv());
    println!();
    println!(
        "# worst sim/bound ratio = {worst_ratio:.3} (safety requires ≤ ~1.0; tightness wants ≥ ~0.3)"
    );
    println!("# misses observed: {} (must be 0)", sim.deadline_misses());
    if sim.deadline_misses() > 0 || worst_ratio > 1.05 {
        println!("# !!! response bound violated — BUG");
        std::process::exit(1);
    }
}
