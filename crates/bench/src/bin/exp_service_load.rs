//! SERVICE-LOAD — throughput and tail latency of the admission-control
//! server (`ringrt-service`) under concurrent clients.
//!
//! Spawns the server in-process on an ephemeral port, drives it with
//! concurrent TCP clients issuing a mix of CHECK and SATURATION requests,
//! and reports throughput plus p50/p99 request latency for two phases:
//!
//! * **cold** — every request is distinct, so each one runs a real
//!   analysis (all cache misses);
//! * **warm** — the same request list replayed, so each verdict is served
//!   from the canonicalizing result cache;
//! * **warm-batch** — the warm list again, but framed as `BATCH <n>`
//!   pipelines so each chunk crosses the socket in one write per
//!   direction.
//!
//! The cold→warm gap is the cache's value; the warm→warm-batch gap is
//! pure per-request syscall and wakeup overhead, since both phases serve
//! every verdict from the cache.

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Instant;

use ringrt_bench::{banner, ExpOptions};
use ringrt_breakdown::table::{cell, Table};
use ringrt_des::stats::DurationHistogram;
use ringrt_service::{spawn, ServiceConfig};
use ringrt_units::SimDuration;

/// Builds one request line; `unique` differentiates the payload so the
/// cold phase cannot hit the cache.
fn request_line(i: usize, unique: usize) -> String {
    let protocol = ["modified", "802.5", "fddi"][i % 3];
    let mbps = if protocol == "fddi" { 100.0 } else { 16.0 };
    let bits_a = 20_000 + 8 * unique;
    let bits_b = 60_000 + 8 * unique;
    let set = format!("20,{bits_a};50,{bits_b}");
    if i.is_multiple_of(4) {
        format!("SATURATION mbps={mbps} set={set} protocol={protocol}")
    } else {
        format!("CHECK mbps={mbps} set={set} protocol={protocol}")
    }
}

struct PhaseResult {
    histogram: DurationHistogram,
    requests: u64,
    errors: u64,
    elapsed_s: f64,
}

/// Joins the per-client worker threads into one merged phase result.
fn collect(
    handles: Vec<std::thread::JoinHandle<(DurationHistogram, u64, u64)>>,
    started: Instant,
) -> PhaseResult {
    let mut histogram = DurationHistogram::new();
    let mut requests = 0;
    let mut errors = 0;
    for h in handles {
        let (hist, n, e) = h.join().expect("client thread");
        histogram.merge(&hist);
        requests += n;
        errors += e;
    }
    PhaseResult {
        histogram,
        requests,
        errors,
        elapsed_s: started.elapsed().as_secs_f64(),
    }
}

/// Runs `clients` concurrent connections, each sending its share of
/// `lines` one request per write, and collects the merged latency
/// histogram.
fn run_phase(addr: SocketAddr, clients: usize, lines: &[String]) -> PhaseResult {
    let started = Instant::now();
    let handles: Vec<_> = (0..clients)
        .map(|c| {
            let my_lines: Vec<String> = lines.iter().skip(c).step_by(clients).cloned().collect();
            std::thread::spawn(move || {
                let stream = TcpStream::connect(addr).expect("connect");
                let mut writer = stream.try_clone().expect("clone");
                let mut reader = BufReader::new(stream);
                let mut hist = DurationHistogram::new();
                let mut errors = 0u64;
                let mut resp = String::new();
                for line in &my_lines {
                    let t0 = Instant::now();
                    writer
                        .write_all(format!("{line}\n").as_bytes())
                        .expect("send");
                    resp.clear();
                    reader.read_line(&mut resp).expect("recv");
                    let ns = u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX);
                    hist.push(SimDuration::from_picos(ns.saturating_mul(1000)));
                    if !resp.starts_with("OK") {
                        errors += 1;
                    }
                }
                (hist, my_lines.len() as u64, errors)
            })
        })
        .collect();
    collect(handles, started)
}

/// Like [`run_phase`], but each client frames its share as `BATCH <n>`
/// pipelines of up to `chunk` requests: one `write` carries the whole
/// chunk out and the server answers it with one `write` back. Latency is
/// recorded per request, amortized across its chunk.
fn run_batched_phase(
    addr: SocketAddr,
    clients: usize,
    lines: &[String],
    chunk: usize,
) -> PhaseResult {
    let started = Instant::now();
    let handles: Vec<_> = (0..clients)
        .map(|c| {
            let my_lines: Vec<String> = lines.iter().skip(c).step_by(clients).cloned().collect();
            std::thread::spawn(move || {
                let stream = TcpStream::connect(addr).expect("connect");
                let mut writer = stream.try_clone().expect("clone");
                let mut reader = BufReader::new(stream);
                let mut hist = DurationHistogram::new();
                let mut errors = 0u64;
                let mut resp = String::new();
                for batch in my_lines.chunks(chunk) {
                    let mut frame = format!("BATCH {}\n", batch.len());
                    for line in batch {
                        frame.push_str(line);
                        frame.push('\n');
                    }
                    let t0 = Instant::now();
                    writer.write_all(frame.as_bytes()).expect("send");
                    for _ in batch {
                        resp.clear();
                        reader.read_line(&mut resp).expect("recv");
                        if !resp.starts_with("OK") {
                            errors += 1;
                        }
                    }
                    let ns = u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX);
                    let per = ns / batch.len() as u64;
                    for _ in batch {
                        hist.push(SimDuration::from_picos(per.saturating_mul(1000)));
                    }
                }
                (hist, my_lines.len() as u64, errors)
            })
        })
        .collect();
    collect(handles, started)
}

fn quantile_us(h: &DurationHistogram, q: f64) -> f64 {
    h.quantile(q)
        .map_or(f64::NAN, |d| d.as_picos() as f64 / 1e6)
}

fn stats_field(addr: SocketAddr, key: &str) -> String {
    let stream = TcpStream::connect(addr).expect("connect");
    let mut writer = stream.try_clone().expect("clone");
    let mut reader = BufReader::new(stream);
    writer.write_all(b"STATS\n").expect("send");
    let mut resp = String::new();
    reader.read_line(&mut resp).expect("recv");
    resp.split_whitespace()
        .find_map(|w| w.strip_prefix(&format!("{key}=")[..]))
        .unwrap_or("?")
        .to_owned()
}

fn main() {
    let opts = ExpOptions::from_env();
    banner(
        "SERVICE-LOAD",
        "admission service throughput and latency, cold vs cache-warm",
        &opts,
    );

    let clients = if opts.quick { 4 } else { 8 };
    let per_client = opts.samples.max(10);
    let total = clients * per_client;
    let workers = ringrt_exec::configured_threads().max(4);

    let server = spawn(ServiceConfig {
        addr: "127.0.0.1:0".to_owned(),
        workers,
        queue_depth: 4 * total.max(16),
        default_deadline_ms: 60_000,
        ..ServiceConfig::default()
    })
    .expect("spawn service");
    let addr = server.addr();
    println!("# server on {addr}, {workers} workers, {clients} clients × {per_client} requests");

    // Cold: every request distinct. Warm: one fixed list, replayed twice so
    // the second pass is all cache hits.
    let cold_lines: Vec<String> = (0..total).map(|i| request_line(i, i + 1)).collect();
    let warm_lines: Vec<String> = (0..total).map(|i| request_line(i, 0)).collect();

    let mut table = Table::new(&[
        "phase",
        "clients",
        "requests",
        "errors",
        "secs",
        "throughput_rps",
        "p50_us",
        "p99_us",
        "cache_hits",
    ]);
    let mut push = |phase: &str, r: &PhaseResult| {
        table.push_row(&[
            phase.into(),
            clients.to_string(),
            r.requests.to_string(),
            r.errors.to_string(),
            cell(r.elapsed_s, 3),
            cell(r.requests as f64 / r.elapsed_s, 1),
            cell(quantile_us(&r.histogram, 0.5), 1),
            cell(quantile_us(&r.histogram, 0.99), 1),
            stats_field(addr, "cache_hits"),
        ]);
    };

    let batch_chunk = 32;
    let cold = run_phase(addr, clients, &cold_lines);
    push("cold", &cold);
    let _prime = run_phase(addr, clients, &warm_lines);
    let warm = run_phase(addr, clients, &warm_lines);
    push("warm", &warm);
    let batched = run_batched_phase(addr, clients, &warm_lines, batch_chunk);
    push(&format!("warm-batch{batch_chunk}"), &batched);

    println!();
    print!("{}", table.to_csv());
    println!();
    let cold_rps = cold.requests as f64 / cold.elapsed_s;
    let warm_rps = warm.requests as f64 / warm.elapsed_s;
    let batched_rps = batched.requests as f64 / batched.elapsed_s;
    println!(
        "# warm throughput is {:.1}x cold (cache short-circuits the analysis pipeline)",
        warm_rps / cold_rps.max(f64::MIN_POSITIVE)
    );
    println!(
        "# BATCH {batch_chunk} is {:.1}x warm line-at-a-time (saved per-request \
         write/read syscalls)",
        batched_rps / warm_rps.max(f64::MIN_POSITIVE)
    );
    println!(
        "# final server stats: requests={} ok={} busy={}",
        stats_field(addr, "requests"),
        stats_field(addr, "ok"),
        stats_field(addr, "busy"),
    );
    server.join();
}
