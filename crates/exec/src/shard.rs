//! The per-worker range shard: a lock-free deque of *indices*.
//!
//! Each worker group owns one [`RangeShard`] — a half-open index range
//! `[lo, hi)` packed into a single `AtomicU64` (`lo` in the high 32 bits,
//! `hi` in the low 32). Because the whole range lives in one word, the
//! owner's take-from-front and a thief's steal-from-back are both plain
//! compare-exchange loops on that word: the two sides can never hand out
//! overlapping indices, and there is no ABA hazard because ranges only
//! ever shrink between a `put` (owner-only, empty-only) and exhaustion.
//!
//! This is the degenerate-but-sufficient form of a Chase–Lev deque for
//! flat index ranges: the owner pops small chunks off the `lo` end
//! (LIFO with respect to its own banked steals — the most recently
//! banked range is the one it is draining), while thieves split off the
//! `hi` end (FIFO with respect to index order). See DESIGN.md §5i for
//! why that split direction keeps the ordered merge cheap.

use std::sync::atomic::{AtomicU64, Ordering};

#[inline]
fn pack(lo: u32, hi: u32) -> u64 {
    (u64::from(lo) << 32) | u64::from(hi)
}

#[inline]
fn unpack(word: u64) -> (u32, u32) {
    ((word >> 32) as u32, word as u32)
}

/// A half-open index range `[lo, hi)` in one atomic word.
///
/// Concurrency contract:
/// - any thread may [`take`](RangeShard::take) or
///   [`steal_half`](RangeShard::steal_half) (CAS loops);
/// - only the shard's owner may [`put`](RangeShard::put), and only while
///   the shard is empty (a plain store — safe because an empty shard is
///   inert: every concurrent `take`/`steal_half` observes `lo == hi` and
///   returns `None` without writing).
#[derive(Debug)]
pub(crate) struct RangeShard {
    word: AtomicU64,
}

impl RangeShard {
    pub(crate) fn new(lo: usize, hi: usize) -> Self {
        debug_assert!(lo <= hi);
        debug_assert!(hi <= u32::MAX as usize);
        RangeShard {
            word: AtomicU64::new(pack(lo as u32, hi as u32)),
        }
    }

    /// Items not yet claimed. A racy-but-monotone hint: shards only
    /// shrink while non-empty, so a `0` observed by a thief is final
    /// until the owner banks a new steal into it.
    pub(crate) fn remaining(&self) -> usize {
        let (lo, hi) = unpack(self.word.load(Ordering::Acquire));
        (hi - lo) as usize
    }

    /// Claims up to `chunk` indices off the **front** (`lo` end).
    pub(crate) fn take(&self, chunk: usize) -> Option<(usize, usize)> {
        let chunk = chunk.max(1) as u32;
        let mut cur = self.word.load(Ordering::Acquire);
        loop {
            let (lo, hi) = unpack(cur);
            if lo >= hi {
                return None;
            }
            let new_lo = lo.saturating_add(chunk).min(hi);
            match self.word.compare_exchange_weak(
                cur,
                pack(new_lo, hi),
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => return Some((lo as usize, new_lo as usize)),
                Err(observed) => cur = observed,
            }
        }
    }

    /// Splits off the upper half (rounded up, so a 1-item shard is still
    /// stealable) from the **back** (`hi` end).
    pub(crate) fn steal_half(&self) -> Option<(usize, usize)> {
        let mut cur = self.word.load(Ordering::Acquire);
        loop {
            let (lo, hi) = unpack(cur);
            if lo >= hi {
                return None;
            }
            let amount = (hi - lo).div_ceil(2);
            let new_hi = hi - amount;
            match self.word.compare_exchange_weak(
                cur,
                pack(lo, new_hi),
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => return Some((new_hi as usize, hi as usize)),
                Err(observed) => cur = observed,
            }
        }
    }

    /// Installs a freshly stolen range into this (empty, owner-held)
    /// shard so other idle workers can re-steal from it.
    pub(crate) fn put(&self, lo: usize, hi: usize) {
        debug_assert_eq!(self.remaining(), 0, "put requires an empty shard");
        debug_assert!(lo <= hi && hi <= u32::MAX as usize);
        self.word
            .store(pack(lo as u32, hi as u32), Ordering::Release);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn take_walks_the_front() {
        let s = RangeShard::new(0, 10);
        assert_eq!(s.take(4), Some((0, 4)));
        assert_eq!(s.take(4), Some((4, 8)));
        assert_eq!(s.take(4), Some((8, 10)));
        assert_eq!(s.take(4), None);
        assert_eq!(s.remaining(), 0);
    }

    #[test]
    fn steal_half_splits_the_back() {
        let s = RangeShard::new(0, 8);
        assert_eq!(s.steal_half(), Some((4, 8)));
        assert_eq!(s.steal_half(), Some((2, 4)));
        assert_eq!(s.steal_half(), Some((1, 2)));
        // A single remaining item is still stealable (half rounds up).
        assert_eq!(s.steal_half(), Some((0, 1)));
        assert_eq!(s.steal_half(), None);
    }

    #[test]
    fn take_and_steal_partition_without_overlap() {
        let s = RangeShard::new(0, 100);
        let mut seen = [false; 100];
        let mut alternate = false;
        loop {
            let claim = if alternate { s.steal_half() } else { s.take(7) };
            alternate = !alternate;
            let Some((lo, hi)) = claim else { break };
            for flag in &mut seen[lo..hi] {
                assert!(!*flag, "index claimed twice in [{lo}, {hi})");
                *flag = true;
            }
        }
        assert!(seen.iter().all(|&b| b), "every index claimed exactly once");
    }

    #[test]
    fn put_rearms_an_empty_shard() {
        let s = RangeShard::new(0, 0);
        assert_eq!(s.take(1), None);
        s.put(10, 14);
        assert_eq!(s.remaining(), 4);
        assert_eq!(s.take(2), Some((10, 12)));
        assert_eq!(s.steal_half(), Some((13, 14)));
        assert_eq!(s.take(2), Some((12, 13)));
    }
}
