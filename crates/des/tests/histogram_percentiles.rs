//! Percentile behavior of the log-bucket `DurationHistogram`.
//!
//! The service layer (`ringrt-service`) reports request latencies through
//! this histogram, so these tests pin down the quantile semantics it
//! relies on: answers are *upper bucket edges*, monotone in `q`, exact for
//! single-bucket data, and stable under merge.

use ringrt_des::stats::DurationHistogram;
use ringrt_units::SimDuration;

/// The histogram's bucket for `ps` is `floor(log2 ps)`; its reported
/// quantile is that bucket's top edge `2^(k+1) - 1`.
fn bucket_upper_edge(ps: u64) -> u64 {
    assert!(ps > 0);
    let k = 63 - ps.leading_zeros();
    if k >= 63 {
        u64::MAX
    } else {
        (1u64 << (k + 1)) - 1
    }
}

#[test]
fn empty_histogram_has_no_quantiles() {
    let h = DurationHistogram::new();
    assert_eq!(h.count(), 0);
    assert_eq!(h.quantile(0.5), None);
    assert_eq!(h.quantile(0.99), None);
    assert_eq!(h.quantile(1.0), None);
}

#[test]
#[should_panic(expected = "quantile")]
fn zero_q_is_rejected() {
    let mut h = DurationHistogram::new();
    h.push(SimDuration::from_picos(100));
    let _ = h.quantile(0.0);
}

#[test]
fn single_sample_all_quantiles_in_its_bucket() {
    let mut h = DurationHistogram::new();
    let ps = 1_000_000; // 1 µs
    h.push(SimDuration::from_picos(ps));
    let edge = SimDuration::from_picos(bucket_upper_edge(ps));
    for q in [0.01, 0.5, 0.99, 1.0] {
        assert_eq!(h.quantile(q), Some(edge), "q = {q}");
    }
}

#[test]
fn uniform_distribution_p50_and_p99() {
    // 1..=1000 µs uniformly: true p50 = 500 µs, true p99 = 990 µs.
    let mut h = DurationHistogram::new();
    for us in 1..=1000u64 {
        h.push(SimDuration::from_micros(us));
    }
    assert_eq!(h.count(), 1000);
    let p50 = h.quantile(0.5).unwrap().as_picos();
    let p99 = h.quantile(0.99).unwrap().as_picos();
    // The bucket answer may overshoot by at most 2x (one bucket width).
    assert!(p50 >= 500_000_000, "p50 = {p50} ps underestimates");
    assert!(p50 <= 2 * 500_000_000, "p50 = {p50} ps overshoots a bucket");
    assert!(p99 >= 990_000_000, "p99 = {p99} ps underestimates");
    assert!(p99 <= 2 * 990_000_000, "p99 = {p99} ps overshoots a bucket");
    assert!(p50 <= p99, "quantiles must be monotone");
}

#[test]
fn bimodal_distribution_separates_modes() {
    // 99 fast requests (~10 µs) and 1 slow outlier (~10 ms): p50 must
    // answer from the fast mode, p995 from the slow one.
    let mut h = DurationHistogram::new();
    for _ in 0..99 {
        h.push(SimDuration::from_micros(10));
    }
    h.push(SimDuration::from_millis(10));
    let p50 = h.quantile(0.5).unwrap();
    let p995 = h.quantile(0.995).unwrap();
    assert_eq!(p50.as_picos(), bucket_upper_edge(10_000_000), "{p50:?}");
    assert_eq!(
        p995.as_picos(),
        bucket_upper_edge(10_000_000_000),
        "{p995:?}"
    );
}

#[test]
fn quantiles_are_monotone_in_q() {
    let mut h = DurationHistogram::new();
    // Geometric spread across many buckets.
    let mut ps = 1u64;
    for _ in 0..40 {
        h.push(SimDuration::from_picos(ps));
        ps = ps.saturating_mul(3);
    }
    let mut last = 0;
    for i in 1..=100 {
        let q = f64::from(i) / 100.0;
        let v = h.quantile(q).unwrap().as_picos();
        assert!(v >= last, "quantile({q}) went backwards: {v} < {last}");
        last = v;
    }
}

#[test]
fn merge_matches_pushing_everything_into_one() {
    let samples_a: Vec<u64> = (1..=500).map(|i| i * 977).collect();
    let samples_b: Vec<u64> = (1..=500).map(|i| i * 31_013).collect();
    let mut merged = DurationHistogram::new();
    let mut a = DurationHistogram::new();
    let mut b = DurationHistogram::new();
    for &ps in &samples_a {
        a.push(SimDuration::from_picos(ps));
        merged.push(SimDuration::from_picos(ps));
    }
    for &ps in &samples_b {
        b.push(SimDuration::from_picos(ps));
        merged.push(SimDuration::from_picos(ps));
    }
    a.merge(&b);
    assert_eq!(a.count(), merged.count());
    for q in [0.1, 0.25, 0.5, 0.9, 0.99, 1.0] {
        assert_eq!(a.quantile(q), merged.quantile(q), "q = {q}");
    }
}

#[test]
fn zero_duration_samples_land_in_the_lowest_bucket() {
    let mut h = DurationHistogram::new();
    h.push(SimDuration::from_picos(0));
    h.push(SimDuration::from_picos(0));
    h.push(SimDuration::from_picos(1));
    // All three samples share buckets 0; every quantile answers ≤ edge of
    // bucket 0 (1 ps).
    assert_eq!(h.quantile(1.0).unwrap().as_picos(), 1);
}
