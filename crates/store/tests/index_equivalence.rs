//! Property harness: the columnar store's maintained secondary indexes
//! must agree with a naive `Vec` model that rescans on every query.
//!
//! Random interleavings of ADMIT / REMOVE / rejected-ADMIT (admit then
//! `rollback_admit`) drive both representations; after every operation
//! the store's O(1)/O(log n) answers — station index, DM order, paging,
//! min deadline/period, utilization — are compared against the model's
//! O(n)/O(n log n) recomputation, bit-for-bit where floats are involved.

use proptest::prelude::*;
use ringrt_model::{SetView, SyncStream};
use ringrt_store::StreamStore;
use ringrt_units::{Bandwidth, Bits, Seconds};

/// The naive reference: admission-order `(name, stream)` pairs, every
/// index recomputed by rescanning.
#[derive(Default)]
struct NaiveStore {
    rows: Vec<(String, SyncStream)>,
}

impl NaiveStore {
    fn admit(&mut self, name: &str, stream: SyncStream) {
        assert!(self.station_index(name).is_none(), "duplicate admit");
        self.rows.push((name.to_owned(), stream));
    }

    fn remove(&mut self, name: &str) -> bool {
        match self.station_index(name) {
            Some(i) => {
                self.rows.remove(i);
                true
            }
            None => false,
        }
    }

    fn station_index(&self, name: &str) -> Option<usize> {
        self.rows.iter().position(|(n, _)| n == name)
    }

    /// DM order by full rescan: stable sort on (deadline, period) under
    /// IEEE total order, admission order breaking remaining ties — the
    /// contract `StreamStore::dm_iter` promises to match.
    fn dm_names(&self) -> Vec<String> {
        let mut order: Vec<usize> = (0..self.rows.len()).collect();
        order.sort_by(|&a, &b| {
            let (sa, sb) = (&self.rows[a].1, &self.rows[b].1);
            sa.relative_deadline()
                .as_secs_f64()
                .total_cmp(&sb.relative_deadline().as_secs_f64())
                .then(
                    sa.period()
                        .as_secs_f64()
                        .total_cmp(&sb.period().as_secs_f64()),
                )
                .then(a.cmp(&b))
        });
        order.into_iter().map(|i| self.rows[i].0.clone()).collect()
    }

    fn min_deadline_bits(&self) -> Option<u64> {
        self.rows
            .iter()
            .map(|(_, s)| s.relative_deadline().as_secs_f64())
            .min_by(f64::total_cmp)
            .map(f64::to_bits)
    }

    fn min_period_bits(&self) -> Option<u64> {
        self.rows
            .iter()
            .map(|(_, s)| s.period().as_secs_f64())
            .min_by(f64::total_cmp)
            .map(f64::to_bits)
    }
}

fn stream(period_sel: u64, bits_sel: u64, deadline_sel: u64) -> SyncStream {
    // Deliberately collision-heavy: few distinct periods so DM ties are
    // common and the seq-based tie-break actually gets exercised.
    let period = Seconds::from_millis(10.0 * (1 + period_sel % 5) as f64);
    let s = SyncStream::new(period, Bits::new(1_000 + 500 * (bits_sel % 7)));
    if deadline_sel.is_multiple_of(3) {
        let d = period.as_secs_f64() * (0.5 + 0.1 * (deadline_sel % 5) as f64);
        s.with_relative_deadline(Seconds::new(d))
    } else {
        s
    }
}

fn assert_equivalent(store: &StreamStore, model: &NaiveStore) {
    assert_eq!(store.len(), model.rows.len());
    assert_eq!(store.is_empty(), model.rows.is_empty());

    // Admission order and per-name station index / handle lookups.
    let names: Vec<&str> = store.iter().map(|(_, n, _)| n).collect();
    let model_names: Vec<&str> = model.rows.iter().map(|(n, _)| n.as_str()).collect();
    assert_eq!(names, model_names, "admission order diverged");
    for (i, (name, stream)) in model.rows.iter().enumerate() {
        assert_eq!(store.station_index(name), Some(i));
        assert!(store.contains(name));
        let handle = store.handle_of(name).expect("live stream has a handle");
        let (got_name, got) = store.get(handle).expect("handle resolves");
        assert_eq!(got_name, name);
        assert_eq!(
            got.period().as_secs_f64().to_bits(),
            stream.period().as_secs_f64().to_bits()
        );
        assert_eq!(got.length_bits(), stream.length_bits());
        // DM rank via the Fenwick/BTree indexes vs the rescan rank.
        let seq = store.seq_of(name).expect("live stream has a seq");
        let rank = store.dm_rank_of(seq);
        assert_eq!(model.dm_names()[rank], *name, "dm_rank_of diverged");
    }

    // Full DM order.
    let dm: Vec<String> = store
        .dm_iter()
        .map(|(seq, _)| {
            let (name, _) = store
                .get(store.handle_of(&names_by_seq(store, seq)).unwrap())
                .unwrap();
            name.to_owned()
        })
        .collect();
    assert_eq!(dm, model.dm_names(), "dm_iter order diverged");

    // Index-backed mins vs rescan mins, bit-for-bit.
    assert_eq!(
        store.min_deadline().map(|d| d.as_secs_f64().to_bits()),
        model.min_deadline_bits()
    );
    assert_eq!(
        store.min_period().map(|p| p.as_secs_f64().to_bits()),
        model.min_period_bits()
    );
    // The SetView mins must agree with the index-backed ones.
    assert_eq!(
        store.min_deadline_view().map(|d| d.as_secs_f64().to_bits()),
        model.min_deadline_bits()
    );
    assert_eq!(
        store.min_period_view().map(|p| p.as_secs_f64().to_bits()),
        model.min_period_bits()
    );

    // Paging: every (offset, limit) window is a slice of admission order.
    for offset in 0..=model.rows.len() {
        for limit in [0usize, 1, 2, model.rows.len()] {
            let page: Vec<&str> = store.page(offset, limit).map(|(n, _)| n).collect();
            let end = (offset + limit).min(model.rows.len());
            let want: Vec<&str> = model_names[offset.min(model.rows.len())..end].to_vec();
            assert_eq!(page, want, "page(offset={offset}, limit={limit}) diverged");
        }
    }

    // Utilization folds in the same (admission) order.
    let bw = Bandwidth::from_mbps(100.0);
    let naive_util: f64 = model.rows.iter().map(|(_, s)| s.utilization(bw)).sum();
    assert_eq!(store.utilization(bw).to_bits(), naive_util.to_bits());
}

/// Resolves a live sequence number back to its name via the public API.
fn names_by_seq(store: &StreamStore, seq: u64) -> String {
    store
        .iter()
        .find(|&(s, _, _)| s == seq)
        .map(|(_, n, _)| n.to_owned())
        .expect("dm_iter yielded a dead seq")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Indexes agree with the naive rescan after every operation in a
    /// random admit/remove/rollback interleaving.
    #[test]
    fn indexes_agree_with_naive_rescan(
        ops in prop::collection::vec((0u8..4, 0u64..12, 0u64..9, 0u64..9), 1..60),
    ) {
        let mut store = StreamStore::new();
        let mut model = NaiveStore::default();
        for &(kind, name_sel, period_sel, bits_sel) in &ops {
            let name = format!("s{name_sel}");
            match kind {
                // Admit a fresh name (skip duplicates — admit panics on them
                // by contract, and the registry never calls it with one).
                0 | 1 => {
                    if !store.contains(&name) {
                        let s = stream(period_sel, bits_sel, name_sel + period_sel);
                        store.admit(&name, s);
                        model.admit(&name, s);
                    }
                }
                // Remove (possibly absent: both sides must agree it's a miss).
                2 => {
                    let removed = store.remove(&name).is_some();
                    assert_eq!(removed, model.remove(&name), "remove disagreed");
                }
                // Rejected admission: tentative admit rolled back must leave
                // every index exactly as before (the registry's reject path).
                _ => {
                    if !store.contains(&name) {
                        let before = store.clone();
                        let s = stream(period_sel, bits_sel, name_sel);
                        let handle = store.admit(&name, s);
                        store.rollback_admit(handle);
                        prop_assert_eq!(&store, &before, "rollback not a no-op");
                    }
                }
            }
            assert_equivalent(&store, &model);
        }

        // PartialEq ignores internal sequence numbering: a store rebuilt
        // from scratch in the surviving admission order must compare equal
        // even though the churned store's seqs are scattered.
        let mut rebuilt = StreamStore::new();
        for (name, s) in &model.rows {
            rebuilt.admit(name, *s);
        }
        prop_assert_eq!(&store, &rebuilt, "PartialEq depends on seq numbering");
    }
}
