//! Journal-shipping replication: roles, the `SHIP` frame codec, and the
//! shared replication status block.
//!
//! A `ringrt serve` process runs in one of two roles:
//!
//! * **primary** — owns the journal, applies mutations, and serves `SYNC`
//!   connections by streaming every committed journal record (and, when a
//!   follower's resume point predates the compaction floor, a snapshot)
//!   as `SHIP` frames;
//! * **follower** (`serve --follow <addr>`) — a warm standby that replays
//!   the primary's frames continuously through
//!   [`RingRegistry::apply_replicated`](ringrt_registry::RingRegistry),
//!   answers read-only commands, redirects mutations with `READONLY`, and
//!   becomes primary on `PROMOTE` (or primary-loss timeout) under a
//!   freshly fenced epoch.
//!
//! The wire format deliberately reuses the journal's own CRC-framed
//! record lines as the frame payload: the follower re-journals each line
//! byte-for-byte, so a promoted standby's journal replays to exactly the
//! state the primary's journal would — the invariant the fault-injection
//! harness (`tests/replication.rs`) checks under dropped, duplicated,
//! reordered, and torn frames.
//!
//! Frames, one per line, after the `OK cmd=sync …` header:
//!
//! ```text
//! SHIP snapshot seq=<n> lines=<k>   # followed by k raw snapshot lines
//! SHIP record <journal-record-line>
//! SHIP ping epoch=<e> head=<h>      # keepalive + replication-lag probe
//! ```

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, Ordering};

use ringrt_obs::HighWater;

/// Which side of the replication stream this node is on.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Role {
    /// Owns the journal and ships it to followers.
    Primary,
    /// Replays a primary's journal; mutations are redirected.
    Follower,
}

impl Role {
    /// Stable lowercase token used in status lines and metrics.
    #[must_use]
    pub fn token(self) -> &'static str {
        match self {
            Role::Primary => "primary",
            Role::Follower => "follower",
        }
    }
}

/// Lock-free replication status shared between the serving threads, the
/// follower replay thread, and the `REPLICATION`/`STATS`/`METRICS`
/// renderers.
///
/// The **replication-lag high-water mark** has the same windowed
/// semantics as the queue-depth peak: `STATS RESET` re-seeds it with the
/// *current* lag rather than zero, so a window opened mid-catch-up never
/// reports a peak below the live lag.
#[derive(Debug)]
pub struct ReplicationState {
    role: AtomicU8,
    source: Option<String>,
    connected: AtomicBool,
    applied_seq: AtomicU64,
    head_seq: AtomicU64,
    lag_peak: HighWater,
    frames_applied: AtomicU64,
    frames_shipped: AtomicU64,
    snapshots_installed: AtomicU64,
    resyncs: AtomicU64,
    followers: AtomicU64,
    promotions: AtomicU64,
}

impl ReplicationState {
    /// A primary when `follow` is `None`, otherwise a follower of that
    /// address.
    #[must_use]
    pub fn new(follow: Option<String>) -> Self {
        ReplicationState {
            role: AtomicU8::new(u8::from(follow.is_some())),
            source: follow,
            connected: AtomicBool::new(false),
            applied_seq: AtomicU64::new(0),
            head_seq: AtomicU64::new(0),
            lag_peak: HighWater::new(),
            frames_applied: AtomicU64::new(0),
            frames_shipped: AtomicU64::new(0),
            snapshots_installed: AtomicU64::new(0),
            resyncs: AtomicU64::new(0),
            followers: AtomicU64::new(0),
            promotions: AtomicU64::new(0),
        }
    }

    /// Current role.
    #[must_use]
    pub fn role(&self) -> Role {
        if self.role.load(Ordering::Acquire) == 0 {
            Role::Primary
        } else {
            Role::Follower
        }
    }

    /// True while this node redirects mutations.
    #[must_use]
    pub fn is_follower(&self) -> bool {
        self.role() == Role::Follower
    }

    /// Flips a follower to primary (after the fenced epoch is durably
    /// published) and counts the promotion.
    pub fn promote(&self) {
        self.role.store(0, Ordering::Release);
        self.connected.store(false, Ordering::Relaxed);
        self.promotions.fetch_add(1, Ordering::Relaxed);
    }

    /// The `--follow` address this node replicates from, if any.
    #[must_use]
    pub fn source(&self) -> Option<&str> {
        self.source.as_deref()
    }

    /// Marks the follower's upstream connection up or down.
    pub fn set_connected(&self, up: bool) {
        self.connected.store(up, Ordering::Relaxed);
    }

    /// Whether the follower currently holds a live `SYNC` stream.
    #[must_use]
    pub fn connected(&self) -> bool {
        self.connected.load(Ordering::Relaxed)
    }

    /// Records a locally applied journal sequence and folds the implied
    /// lag into the high-water mark.
    pub fn note_applied(&self, seq: u64) {
        self.applied_seq.fetch_max(seq, Ordering::Relaxed);
        self.frames_applied.fetch_add(1, Ordering::Relaxed);
        self.lag_peak.observe(self.lag());
    }

    /// Records the primary's advertised head sequence (from the `SYNC`
    /// header or a ping) and folds the implied lag into the high-water
    /// mark.
    pub fn note_head(&self, head: u64) {
        self.head_seq.fetch_max(head, Ordering::Relaxed);
        self.lag_peak.observe(self.lag());
    }

    /// Records a snapshot installation: everything up to `seq` is applied.
    pub fn note_snapshot(&self, seq: u64) {
        self.snapshots_installed.fetch_add(1, Ordering::Relaxed);
        self.applied_seq.fetch_max(seq, Ordering::Relaxed);
        self.lag_peak.observe(self.lag());
    }

    /// Counts one frame shipped to some follower.
    pub fn note_shipped(&self) {
        self.frames_shipped.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts a forced resubscription (sequence gap or stream error).
    pub fn note_resync(&self) {
        self.resyncs.fetch_add(1, Ordering::Relaxed);
    }

    /// A follower stream attached to this primary.
    pub fn follower_attached(&self) {
        self.followers.fetch_add(1, Ordering::Relaxed);
    }

    /// A follower stream detached from this primary.
    pub fn follower_detached(&self) {
        self.followers.fetch_sub(1, Ordering::Relaxed);
    }

    /// Live `SYNC` streams this primary is feeding.
    #[must_use]
    pub fn followers(&self) -> u64 {
        self.followers.load(Ordering::Relaxed)
    }

    /// Records behind the advertised primary head (0 on a primary or a
    /// fully caught-up follower).
    #[must_use]
    pub fn lag(&self) -> u64 {
        self.head_seq
            .load(Ordering::Relaxed)
            .saturating_sub(self.applied_seq.load(Ordering::Relaxed))
    }

    /// Deepest lag observed in the current measurement window.
    #[must_use]
    pub fn lag_peak(&self) -> u64 {
        self.lag_peak.peak()
    }

    /// Highest journal sequence applied locally via replication.
    #[must_use]
    pub fn applied_seq(&self) -> u64 {
        self.applied_seq.load(Ordering::Relaxed)
    }

    /// `STATS RESET`: start a fresh lag window seeded with the *current*
    /// lag (same windowed semantics as the queue-depth peak).
    pub fn reset_window(&self) {
        self.lag_peak.reset(self.lag());
    }

    /// Appends the replication fields shared by `REPLICATION` and `STATS`
    /// to `out`. `epoch` comes from the registry (the durable value).
    pub fn render(&self, epoch: u64, out: &mut String) {
        use std::fmt::Write as _;
        let c = |a: &AtomicU64| a.load(Ordering::Relaxed);
        let _ = write!(
            out,
            " role={} epoch={epoch} connected={} source={} applied_seq={} head_seq={} lag={} \
             lag_peak={} followers={} frames_shipped={} frames_applied={} \
             snapshots_installed={} resyncs={} promotions={}",
            self.role().token(),
            self.connected(),
            self.source.as_deref().unwrap_or("-"),
            c(&self.applied_seq),
            c(&self.head_seq),
            self.lag(),
            self.lag_peak(),
            c(&self.followers),
            c(&self.frames_shipped),
            c(&self.frames_applied),
            c(&self.snapshots_installed),
            c(&self.resyncs),
            c(&self.promotions),
        );
    }

    /// Emits replication gauges and counters into a Prometheus writer.
    pub fn render_prometheus(&self, epoch: u64, w: &mut ringrt_obs::prom::PromWriter) {
        let c = |a: &AtomicU64| a.load(Ordering::Relaxed) as f64;
        w.gauge(
            "ringrt_replication_role",
            "0 = primary, 1 = follower.",
            &[],
            f64::from(u8::from(self.is_follower())),
        );
        w.gauge(
            "ringrt_replication_epoch",
            "Durable fencing epoch this node serves under.",
            &[],
            epoch as f64,
        );
        w.gauge(
            "ringrt_replication_connected",
            "1 while the follower holds a live SYNC stream.",
            &[],
            f64::from(u8::from(self.connected())),
        );
        w.gauge(
            "ringrt_replication_lag",
            "Journal records behind the advertised primary head.",
            &[],
            self.lag() as f64,
        );
        w.gauge(
            "ringrt_replication_lag_peak",
            "Deepest replication lag since the last STATS RESET.",
            &[],
            self.lag_peak() as f64,
        );
        w.gauge(
            "ringrt_replication_followers",
            "Live SYNC streams this primary is feeding.",
            &[],
            c(&self.followers),
        );
        w.counter(
            "ringrt_replication_frames_shipped_total",
            "SHIP record frames sent to followers.",
            &[],
            c(&self.frames_shipped),
        );
        w.counter(
            "ringrt_replication_frames_applied_total",
            "SHIP record frames applied locally.",
            &[],
            c(&self.frames_applied),
        );
        w.counter(
            "ringrt_replication_resyncs_total",
            "Forced resubscriptions after a gap or stream error.",
            &[],
            c(&self.resyncs),
        );
        w.counter(
            "ringrt_replication_promotions_total",
            "Follower-to-primary promotions performed by this process.",
            &[],
            c(&self.promotions),
        );
    }
}

/// The follower→primary subscription line. `cluster=0` means "my journal
/// has no identity yet; I will adopt yours".
#[must_use]
pub(crate) fn sync_request(epoch: u64, seq: u64, cluster: u64) -> String {
    format!("SYNC epoch={epoch} seq={seq} cluster={cluster}")
}

/// The primary's `OK` header opening a ship stream.
#[must_use]
pub(crate) fn sync_header(
    epoch: u64,
    head: u64,
    snapshot: bool,
    backlog: usize,
    cluster: u64,
) -> String {
    format!(
        "OK cmd=sync epoch={epoch} head={head} snapshot={} backlog={backlog} cluster={cluster}",
        u8::from(snapshot)
    )
}

/// Parsed form of the `OK cmd=sync …` header.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) struct SyncHeader {
    pub epoch: u64,
    pub head: u64,
    pub snapshot: bool,
    pub backlog: u64,
    pub cluster: u64,
}

fn field(line: &str, key: &str) -> Result<u64, String> {
    let tag = format!("{key}=");
    line.split_whitespace()
        .find_map(|w| w.strip_prefix(&tag))
        .ok_or_else(|| format!("sync header missing {key}=: {line:?}"))?
        .parse()
        .map_err(|e| format!("sync header {key}= unparseable ({e}): {line:?}"))
}

/// Like [`field`], but a missing key yields `default` — used for keys
/// added after the wire format first shipped, so a newer follower can
/// still parse an older primary's header.
fn field_or(line: &str, key: &str, default: u64) -> Result<u64, String> {
    let tag = format!("{key}=");
    match line.split_whitespace().find_map(|w| w.strip_prefix(&tag)) {
        None => Ok(default),
        Some(text) => text
            .parse()
            .map_err(|e| format!("sync header {key}= unparseable ({e}): {line:?}")),
    }
}

/// Parses the primary's response to `SYNC`. A non-`OK` line (fencing
/// refusal, cluster mismatch, follower refusing to ship, …) comes back as
/// the error.
pub(crate) fn parse_sync_header(line: &str) -> Result<SyncHeader, String> {
    if !line.starts_with("OK cmd=sync") {
        return Err(line.to_owned());
    }
    Ok(SyncHeader {
        epoch: field(line, "epoch")?,
        head: field(line, "head")?,
        snapshot: field(line, "snapshot")? != 0,
        backlog: field(line, "backlog")?,
        cluster: field_or(line, "cluster", 0)?,
    })
}

/// One frame of the ship stream, after the header.
#[derive(Clone, Debug, PartialEq, Eq)]
pub(crate) enum ShipFrame {
    /// A raw journal record line to re-journal and apply.
    Record(String),
    /// A snapshot header: the next `lines` raw lines are the snapshot
    /// text covering everything up to `seq`.
    Snapshot { seq: u64, lines: u64 },
    /// Keepalive carrying the primary's epoch and head.
    Ping { epoch: u64, head: u64 },
}

/// Renders a record frame around a journal record line (no newline).
#[must_use]
pub(crate) fn render_record(record: &str) -> String {
    format!("SHIP record {record}")
}

/// Renders the snapshot frame header.
#[must_use]
pub(crate) fn render_snapshot(seq: u64, lines: u64) -> String {
    format!("SHIP snapshot seq={seq} lines={lines}")
}

/// Renders a keepalive frame.
#[must_use]
pub(crate) fn render_ping(epoch: u64, head: u64) -> String {
    format!("SHIP ping epoch={epoch} head={head}")
}

/// Parses one ship-stream line into a frame.
pub(crate) fn parse_ship_frame(line: &str) -> Result<ShipFrame, String> {
    let body = line
        .strip_prefix("SHIP ")
        .ok_or_else(|| format!("expected a SHIP frame, got {line:?}"))?;
    if let Some(record) = body.strip_prefix("record ") {
        return Ok(ShipFrame::Record(record.to_owned()));
    }
    if body.starts_with("snapshot ") {
        return Ok(ShipFrame::Snapshot {
            seq: field(body, "seq")?,
            lines: field(body, "lines")?,
        });
    }
    if body.starts_with("ping ") {
        return Ok(ShipFrame::Ping {
            epoch: field(body, "epoch")?,
            head: field(body, "head")?,
        });
    }
    Err(format!("unknown SHIP frame: {line:?}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roles_and_promotion() {
        let primary = ReplicationState::new(None);
        assert_eq!(primary.role(), Role::Primary);
        assert!(!primary.is_follower());
        let follower = ReplicationState::new(Some("127.0.0.1:4410".into()));
        assert!(follower.is_follower());
        assert_eq!(follower.source(), Some("127.0.0.1:4410"));
        follower.promote();
        assert_eq!(follower.role(), Role::Primary);
        let mut out = String::new();
        follower.render(3, &mut out);
        assert!(out.contains(" role=primary"), "{out}");
        assert!(out.contains(" epoch=3"), "{out}");
        assert!(out.contains(" promotions=1"), "{out}");
    }

    #[test]
    fn lag_window_reseeds_with_current_lag() {
        let st = ReplicationState::new(Some("x".into()));
        st.note_head(10);
        assert_eq!(st.lag_peak(), 10, "a bare head advertises 10 unapplied");
        st.note_applied(4);
        assert_eq!(st.lag(), 6);
        st.note_applied(9);
        assert_eq!(st.lag(), 1);
        assert_eq!(st.lag_peak(), 10, "peak must not regress with progress");
        // STATS RESET semantics: the new window starts at the live lag,
        // not zero.
        st.reset_window();
        assert_eq!(st.lag_peak(), 1);
        st.note_applied(10);
        st.reset_window();
        assert_eq!(st.lag_peak(), 0);
    }

    #[test]
    fn frame_codec_round_trips() {
        assert_eq!(
            parse_ship_frame(&render_record("0a1b2c3d 7 admit ring=r")).unwrap(),
            ShipFrame::Record("0a1b2c3d 7 admit ring=r".to_owned())
        );
        assert_eq!(
            parse_ship_frame(&render_snapshot(42, 5)).unwrap(),
            ShipFrame::Snapshot { seq: 42, lines: 5 }
        );
        assert_eq!(
            parse_ship_frame(&render_ping(2, 99)).unwrap(),
            ShipFrame::Ping { epoch: 2, head: 99 }
        );
        assert!(parse_ship_frame("SHIP wat").is_err());
        assert!(parse_ship_frame("OK cmd=ping").is_err());
    }

    #[test]
    fn sync_header_round_trips_and_rejects_refusals() {
        let h = parse_sync_header(&sync_header(4, 17, true, 9, 0xfeed)).unwrap();
        assert_eq!(
            h,
            SyncHeader {
                epoch: 4,
                head: 17,
                snapshot: true,
                backlog: 9,
                cluster: 0xfeed
            }
        );
        // A header from before cluster identity shipped still parses.
        let legacy = parse_sync_header("OK cmd=sync epoch=1 head=2 snapshot=0 backlog=0").unwrap();
        assert_eq!(legacy.cluster, 0);
        let refused = parse_sync_header("ERR cmd=sync fenced requester_epoch=1 epoch=2");
        assert!(refused.unwrap_err().contains("fenced"));
    }
}
