//! Request execution: maps a parsed [`AnalysisRequest`] onto the analysis
//! kernels and renders the response body.
//!
//! Kept free of any server state so the verdict logic is unit-testable and
//! provably identical to calling the analyzers directly — the service
//! integration tests rely on that equivalence.

use std::fmt::Write as _;

use ringrt_breakdown::{BreakdownEstimator, SaturationSearch};
use ringrt_core::pdp::{PdpAnalyzer, PdpVariant};
use ringrt_core::ttp::TtpAnalyzer;
use ringrt_core::SchedulabilityTest;
use ringrt_exec::Pool;
use ringrt_model::{FrameFormat, MessageSet, RingConfig};
use ringrt_sim::{PdpSimulator, Phasing, SimConfig, TtpSimulator};
use ringrt_units::{Bandwidth, Seconds};
use ringrt_workload::MessageSetGenerator;

use crate::protocol::{AbuRequest, AnalysisRequest, CommandKind, ProtocolKind};

/// Hard cap on SIMULATE length; requests beyond it are rejected so a single
/// client cannot pin a worker for minutes.
pub const MAX_SIM_SECONDS: f64 = 5.0;

fn analyzer_for(
    protocol: ProtocolKind,
    stations: usize,
    bw: Bandwidth,
) -> Box<dyn SchedulabilityTest + Sync> {
    match protocol {
        ProtocolKind::Ieee8025 => Box::new(PdpAnalyzer::new(
            RingConfig::ieee_802_5(stations, bw),
            FrameFormat::paper_default(),
            PdpVariant::Standard,
        )),
        ProtocolKind::Modified => Box::new(PdpAnalyzer::new(
            RingConfig::ieee_802_5(stations, bw),
            FrameFormat::paper_default(),
            PdpVariant::Modified,
        )),
        ProtocolKind::Fddi => Box::new(TtpAnalyzer::with_defaults(RingConfig::fddi(stations, bw))),
    }
}

/// Runs one analysis request to completion and renders the response body.
///
/// The body uses the same canonical field names as `ringrt check
/// --format csv` (`protocol`, `mbps`, `stations`, `streams`,
/// `utilization`, `schedulable`); the server appends `cached=…` before
/// sending.
#[must_use]
pub fn execute(req: &AnalysisRequest) -> String {
    execute_with(req, &Pool::serial())
}

/// Like [`execute`], but fans parallelizable work — currently the
/// `SATURATION` boundary search — across `pool`'s workers. With a
/// single-threaded pool the result is identical to [`execute`]; wider
/// pools agree within the search tolerance.
#[must_use]
pub fn execute_with(req: &AnalysisRequest, pool: &Pool) -> String {
    let bw = Bandwidth::from_mbps(req.mbps);
    let stations = req.effective_stations();
    let set = &req.set;
    let mut body = format!(
        "OK cmd={} protocol={} mbps={} stations={stations} streams={} utilization={:.6}",
        req.command.token(),
        req.protocol,
        req.mbps,
        set.len(),
        set.utilization(bw),
    );
    match req.command {
        CommandKind::Check => {
            let verdict = analyzer_for(req.protocol, stations, bw).is_schedulable(set);
            let _ = write!(body, " schedulable={verdict}");
        }
        CommandKind::Saturation => {
            let analyzer = analyzer_for(req.protocol, stations, bw);
            let verdict = analyzer.is_schedulable(set);
            let _ = write!(body, " schedulable={verdict}");
            match SaturationSearch::default().saturate_with(analyzer.as_ref(), set, bw, pool) {
                Some(sat) => {
                    let _ = write!(
                        body,
                        " scale={:.6} breakdown_util={:.6}",
                        sat.scale, sat.utilization
                    );
                }
                None => {
                    let _ = write!(body, " scale=nan breakdown_util=nan");
                }
            }
        }
        CommandKind::Simulate => match simulate(req, set, bw, stations) {
            Ok(extra) => body.push_str(&extra),
            Err(msg) => return format!("ERR {msg}"),
        },
        CommandKind::Abu => unreachable!("ABU has its own request type"),
        CommandKind::Sleep => unreachable!("SLEEP is not an analysis command"),
    }
    body
}

/// Runs one `ABU` request: Monte-Carlo average-breakdown-utilization
/// estimation over the paper's population for the requested station count,
/// with the samples fanned across `pool`. The response body is a pure
/// function of the request — the per-sample seed-derivation scheme makes
/// the estimate bit-identical at any pool width — so the server caches it.
#[must_use]
pub fn execute_abu(req: &AbuRequest, pool: &Pool) -> String {
    let bw = Bandwidth::from_mbps(req.mbps);
    let analyzer = analyzer_for(req.protocol, req.stations, bw);
    let estimator = BreakdownEstimator::new(
        MessageSetGenerator::paper_population(req.stations),
        req.samples,
    );
    let est = estimator.estimate_parallel(analyzer.as_ref(), bw, req.seed, pool);
    format!(
        "OK cmd=abu protocol={} mbps={} stations={} samples={} seed={} \
         abu_mean={:.6} abu_ci95={:.6} infeasible_sets={}",
        req.protocol,
        req.mbps,
        req.stations,
        req.samples,
        req.seed,
        est.mean,
        est.ci95,
        est.infeasible_sets,
    )
}

fn simulate(
    req: &AnalysisRequest,
    set: &MessageSet,
    bw: Bandwidth,
    stations: usize,
) -> Result<String, String> {
    if req.seconds > MAX_SIM_SECONDS {
        return Err(format!(
            "seconds={} exceeds the server limit of {MAX_SIM_SECONDS}",
            req.seconds
        ));
    }
    let config = SimConfig::new(
        ring_for(req.protocol, stations, bw),
        Seconds::new(req.seconds),
    )
    .with_phasing(Phasing::Synchronized)
    .with_async_load(req.async_load)
    .with_seed(req.seed);
    let report = match req.protocol {
        ProtocolKind::Ieee8025 => PdpSimulator::new(
            set,
            config,
            FrameFormat::paper_default(),
            PdpVariant::Standard,
        )
        .run(),
        ProtocolKind::Modified => PdpSimulator::new(
            set,
            config,
            FrameFormat::paper_default(),
            PdpVariant::Modified,
        )
        .run(),
        ProtocolKind::Fddi => TtpSimulator::from_analysis(set, config)
            .map_err(|e| format!("FDDI cannot allocate synchronous bandwidth: {e}"))?
            .run(),
    };
    Ok(format!(
        " seconds={} seed={} schedulable={} completed={} deadline_misses={} \
         medium_utilization={:.6} events={}",
        req.seconds,
        req.seed,
        report.all_deadlines_met(),
        report.completed(),
        report.deadline_misses(),
        report.medium_utilization,
        report.events,
    ))
}

fn ring_for(protocol: ProtocolKind, stations: usize, bw: Bandwidth) -> RingConfig {
    match protocol {
        ProtocolKind::Ieee8025 | ProtocolKind::Modified => RingConfig::ieee_802_5(stations, bw),
        ProtocolKind::Fddi => RingConfig::fddi(stations, bw),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::{parse_request, Request};

    fn exec(line: &str) -> String {
        match parse_request(line).unwrap() {
            Request::Analysis(a) => execute(&a),
            other => panic!("not an analysis request: {other:?}"),
        }
    }

    #[test]
    fn check_matches_direct_analyzer_call() {
        let set = ringrt_model::parse_message_set("20, 20000\n50, 60000\n").unwrap();
        let bw = Bandwidth::from_mbps(16.0);
        let direct = PdpAnalyzer::new(
            RingConfig::ieee_802_5(2, bw),
            FrameFormat::paper_default(),
            PdpVariant::Modified,
        )
        .is_schedulable(&set);
        let body = exec("CHECK mbps=16 set=20,20000;50,60000 protocol=modified");
        assert!(body.contains(&format!("schedulable={direct}")), "{body}");
        assert!(
            body.starts_with("OK cmd=check protocol=modified mbps=16 stations=2"),
            "{body}"
        );
    }

    #[test]
    fn saturation_reports_boundary() {
        let body = exec("SATURATION mbps=100 set=20,20000;50,60000 protocol=fddi");
        assert!(body.contains(" scale="), "{body}");
        assert!(body.contains(" breakdown_util="), "{body}");
        let scale: f64 = body
            .split(" scale=")
            .nth(1)
            .unwrap()
            .split_whitespace()
            .next()
            .unwrap()
            .parse()
            .unwrap();
        // This light set at 100 Mbps has lots of headroom.
        assert!(scale > 1.0, "{body}");
    }

    #[test]
    fn simulate_runs_and_reports() {
        let body = exec("SIMULATE mbps=4 set=20,4000;40,8000 seconds=0.2 seed=7");
        assert!(body.contains(" completed="), "{body}");
        assert!(body.contains(" deadline_misses=0"), "{body}");
        assert!(body.contains(" seed=7"), "{body}");
    }

    #[test]
    fn simulate_rejects_overlong_runs() {
        let body = exec("SIMULATE mbps=4 set=20,4000 seconds=3600");
        assert!(body.starts_with("ERR"), "{body}");
        assert!(body.contains("server limit"), "{body}");
    }

    #[test]
    fn unschedulable_set_says_so() {
        // 120 % utilization at 1 Mbps: hopeless.
        let body = exec("CHECK mbps=1 set=10,60000;10,60000");
        assert!(body.contains("schedulable=false"), "{body}");
    }

    #[test]
    fn pooled_saturation_matches_serial_within_tolerance() {
        let req = match parse_request("SATURATION mbps=100 set=20,20000;50,60000 protocol=fddi")
            .unwrap()
        {
            Request::Analysis(a) => a,
            other => panic!("unexpected {other:?}"),
        };
        let scale_of = |body: &str| -> f64 {
            body.split(" scale=")
                .nth(1)
                .unwrap()
                .split_whitespace()
                .next()
                .unwrap()
                .parse()
                .unwrap()
        };
        let serial = scale_of(&execute(&req));
        let pooled = scale_of(&execute_with(&req, &Pool::new(4)));
        assert!(
            ((pooled - serial) / serial).abs() <= 2e-4,
            "serial {serial} vs pooled {pooled}"
        );
    }

    #[test]
    fn abu_is_bit_identical_at_any_pool_width() {
        let req = match parse_request("ABU mbps=100 stations=8 samples=20 seed=5 protocol=fddi")
            .unwrap()
        {
            Request::Abu(a) => a,
            other => panic!("unexpected {other:?}"),
        };
        let serial = execute_abu(&req, &Pool::serial());
        assert!(serial.contains("cmd=abu"), "{serial}");
        assert!(serial.contains(" abu_mean="), "{serial}");
        assert_eq!(serial, execute_abu(&req, &Pool::new(4)));
        assert_eq!(serial, execute_abu(&req, &Pool::new(8)));
        // A different seed must produce a different sample stream.
        let reseeded = AbuRequest { seed: 6, ..req };
        assert_ne!(serial, execute_abu(&reseeded, &Pool::serial()));
    }
}
