//! Sharded, canonicalizing result cache with LRU eviction.
//!
//! Admission checks are pure functions of (message set, ring config,
//! protocol), so identical requests — a common pattern when clients retry
//! or several front-ends ask about the same set — can be answered without
//! re-running the analysis. Keys canonicalize the message set by *sorting*
//! the streams, so two requests that list the same streams in different
//! order hit the same entry.
//!
//! The map is split into [`SHARDS`] independently locked shards (hash of
//! the key picks the shard) so concurrent workers and connection threads
//! rarely contend on the same mutex. Each shard holds at most
//! `capacity / SHARDS` entries; inserting into a full shard evicts its
//! least-recently-used entry (recency is a global atomic tick stamped on
//! every hit), so a long-running server's memory stays bounded no matter
//! how many distinct sets clients probe.

use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use crate::protocol::{AbuRequest, AnalysisRequest, CommandKind, ProtocolKind};

/// Number of independently locked shards. Power of two, comfortably above
/// any realistic worker count.
pub const SHARDS: usize = 16;

/// Default total entry capacity when none is configured.
pub const DEFAULT_CAPACITY: usize = 4096;

/// A canonical description of an analysis request.
///
/// Floats are compared by their IEEE-754 bit patterns: requests must be
/// *literally* identical (after stream reordering) to share an entry,
/// which is exactly the semantics a result cache needs — no epsilon
/// surprises.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct CacheKey {
    command: CommandKind,
    protocol: ProtocolKind,
    mbps_bits: u64,
    stations: usize,
    /// `(period seconds as bits, payload bits)` per stream, sorted.
    streams: Vec<(u64, u64)>,
    /// SIMULATE-only parameters; zeroed for the analytic commands so that
    /// e.g. a CHECK and a SATURATION of the same set stay distinct only
    /// via `command`. `ABU` keys reuse the first two slots for
    /// `(samples, seed)`.
    sim: (u64, u64, u64),
    /// For stored-ring analyses: the ring's registry mutation generation at
    /// lookup time. Generations are globally unique and bumped on every
    /// `ADMIT`/`REMOVE`/`REGISTER`, so an entry tagged with one simply stops
    /// being reachable the moment its ring mutates — no `EVICT` needed.
    /// `None` for inline-set requests, whose key already *is* the full
    /// input.
    ring_generation: Option<u64>,
}

impl CommandKind {
    fn cacheable(self) -> bool {
        !matches!(self, CommandKind::Sleep)
    }
}

impl CacheKey {
    /// Builds the canonical key for a request, or `None` if the command's
    /// results are not cacheable.
    #[must_use]
    pub fn for_request(req: &AnalysisRequest) -> Option<CacheKey> {
        if !req.command.cacheable() {
            return None;
        }
        let mut streams: Vec<(u64, u64)> = req
            .set
            .as_slice()
            .iter()
            .map(|s| (s.period().as_secs_f64().to_bits(), s.length_bits().as_u64()))
            .collect();
        streams.sort_unstable();
        let sim = if req.command == CommandKind::Simulate {
            (req.seconds.to_bits(), req.async_load.to_bits(), req.seed)
        } else {
            (0, 0, 0)
        };
        Some(CacheKey {
            command: req.command,
            protocol: req.protocol,
            mbps_bits: req.mbps.to_bits(),
            stations: req.effective_stations(),
            streams,
            sim,
            ring_generation: None,
        })
    }

    /// The canonical key for an `ABU` request. Always cacheable: the
    /// parallel estimator's sample stream is bit-identical for a given
    /// seed at any pool width, so the cached body is exact.
    #[must_use]
    pub fn for_abu(req: &AbuRequest) -> CacheKey {
        CacheKey {
            command: CommandKind::Abu,
            protocol: req.protocol,
            mbps_bits: req.mbps.to_bits(),
            stations: req.stations,
            streams: Vec::new(),
            sim: (req.samples as u64, req.seed, 0),
            ring_generation: None,
        }
    }

    /// Tags this key with a ring's registry mutation generation, scoping it
    /// to one exact incarnation of a stored ring's state.
    #[must_use]
    pub fn with_ring_generation(mut self, generation: u64) -> CacheKey {
        self.ring_generation = Some(generation);
        self
    }

    fn shard(&self) -> usize {
        let mut h = DefaultHasher::new();
        self.hash(&mut h);
        (h.finish() as usize) % SHARDS
    }
}

/// A cached response body stamped with its last-use tick.
#[derive(Debug)]
struct Entry {
    body: String,
    last_used: u64,
}

/// The sharded LRU verdict cache with hit/miss/eviction accounting.
#[derive(Debug)]
pub struct ResultCache {
    shards: Vec<Mutex<HashMap<CacheKey, Entry>>>,
    /// Entry cap per shard (total capacity / [`SHARDS`], at least 1).
    shard_capacity: usize,
    /// Monotonic recency clock; bumped on every get and insert.
    tick: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

impl ResultCache {
    /// Creates an empty cache with the [`DEFAULT_CAPACITY`].
    #[must_use]
    pub fn new() -> Self {
        ResultCache::with_capacity(DEFAULT_CAPACITY)
    }

    /// Creates an empty cache capped at `capacity` total entries
    /// (distributed over the shards; at least one entry per shard).
    #[must_use]
    pub fn with_capacity(capacity: usize) -> Self {
        ResultCache {
            shards: (0..SHARDS).map(|_| Mutex::new(HashMap::new())).collect(),
            shard_capacity: (capacity / SHARDS).max(1),
            tick: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// Total entry capacity.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.shard_capacity * SHARDS
    }

    /// Looks up a cached response body, counting the hit or miss and
    /// refreshing the entry's recency on a hit.
    #[must_use]
    pub fn get(&self, key: &CacheKey) -> Option<String> {
        let mut shard = self.shards[key.shard()]
            .lock()
            .expect("cache shard poisoned");
        let found = shard.get_mut(key).map(|e| {
            e.last_used = self.tick.fetch_add(1, Ordering::Relaxed);
            e.body.clone()
        });
        drop(shard);
        if found.is_some() {
            self.hits.fetch_add(1, Ordering::Relaxed);
        } else {
            self.misses.fetch_add(1, Ordering::Relaxed);
        }
        found
    }

    /// Stores a successful response body, evicting the shard's
    /// least-recently-used entry if the shard is at capacity.
    pub fn insert(&self, key: CacheKey, body: String) {
        let mut shard = self.shards[key.shard()]
            .lock()
            .expect("cache shard poisoned");
        if !shard.contains_key(&key) && shard.len() >= self.shard_capacity {
            if let Some(coldest) = shard
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k.clone())
            {
                shard.remove(&coldest);
                self.evictions.fetch_add(1, Ordering::Relaxed);
            }
        }
        let last_used = self.tick.fetch_add(1, Ordering::Relaxed);
        shard.insert(key, Entry { body, last_used });
    }

    /// Drops every entry (the `EVICT` command), returning how many were
    /// removed. The removals are **not** counted as LRU evictions — they
    /// were requested, not forced by capacity.
    pub fn clear(&self) -> usize {
        let mut removed = 0;
        for shard in &self.shards {
            let mut shard = shard.lock().expect("cache shard poisoned");
            removed += shard.len();
            shard.clear();
        }
        removed
    }

    /// Zeroes the hit/miss/eviction counters (the `STATS RESET` command).
    ///
    /// Stored entries are untouched — occupancy is a gauge, and dropping
    /// warm entries on a stats reset would perturb the very latencies the
    /// next measurement window wants to observe. Use [`ResultCache::clear`]
    /// (the `EVICT` command) to drop entries.
    pub fn reset_counters(&self) {
        self.hits.store(0, Ordering::Relaxed);
        self.misses.store(0, Ordering::Relaxed);
        self.evictions.store(0, Ordering::Relaxed);
    }

    /// Cache hits so far.
    #[must_use]
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Cache misses so far.
    #[must_use]
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Entries evicted by the LRU policy so far.
    #[must_use]
    pub fn evictions(&self) -> u64 {
        self.evictions.load(Ordering::Relaxed)
    }

    /// Number of distinct entries currently stored.
    #[must_use]
    pub fn entries(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().expect("cache shard poisoned").len())
            .sum()
    }
}

impl Default for ResultCache {
    fn default() -> Self {
        ResultCache::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::{parse_request, Request};

    fn key_of(line: &str) -> Option<CacheKey> {
        match parse_request(line).unwrap() {
            Request::Analysis(a) => CacheKey::for_request(&a),
            other => panic!("not an analysis request: {other:?}"),
        }
    }

    #[test]
    fn stream_order_is_canonicalized() {
        let a = key_of("CHECK mbps=16 set=20,1000;50,2000").unwrap();
        let b = key_of("CHECK mbps=16 set=50,2000;20,1000").unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn different_parameters_differ() {
        let base = key_of("CHECK mbps=16 set=20,1000").unwrap();
        assert_ne!(base, key_of("CHECK mbps=4 set=20,1000").unwrap());
        assert_ne!(base, key_of("CHECK mbps=16 set=20,1001").unwrap());
        assert_ne!(
            base,
            key_of("CHECK mbps=16 set=20,1000 protocol=fddi").unwrap()
        );
        assert_ne!(
            base,
            key_of("CHECK mbps=16 set=20,1000 stations=9").unwrap()
        );
        assert_ne!(base, key_of("SATURATION mbps=16 set=20,1000").unwrap());
    }

    #[test]
    fn simulate_keys_include_sim_parameters() {
        let a = key_of("SIMULATE mbps=16 set=20,1000 seed=1").unwrap();
        let b = key_of("SIMULATE mbps=16 set=20,1000 seed=2").unwrap();
        let c = key_of("SIMULATE mbps=16 set=20,1000 seconds=0.25").unwrap();
        assert_ne!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn deadline_does_not_affect_key() {
        let a = key_of("CHECK mbps=16 set=20,1000").unwrap();
        let b = key_of("CHECK mbps=16 set=20,1000 deadline_ms=5").unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn ring_generation_distinguishes_incarnations() {
        let base = key_of("SIMULATE mbps=16 set=20,1000 seed=1").unwrap();
        let g1 = base.clone().with_ring_generation(1);
        let g2 = base.clone().with_ring_generation(2);
        assert_ne!(base, g1);
        assert_ne!(g1, g2);
        assert_eq!(g1, base.with_ring_generation(1));
    }

    #[test]
    fn abu_keys_canonicalize_parameters() {
        use crate::protocol::AbuRequest;
        let req = |mbps: f64, stations, samples, seed| {
            CacheKey::for_abu(&AbuRequest {
                protocol: ProtocolKind::Fddi,
                mbps,
                stations,
                samples,
                seed,
                deadline_ms: None,
            })
        };
        let base = req(100.0, 16, 50, 1);
        assert_eq!(base, req(100.0, 16, 50, 1));
        assert_ne!(base, req(16.0, 16, 50, 1));
        assert_ne!(base, req(100.0, 8, 50, 1));
        assert_ne!(base, req(100.0, 16, 51, 1));
        assert_ne!(base, req(100.0, 16, 50, 2));
        // Distinct from an inline-set command with the same scalars.
        assert_ne!(
            base,
            key_of("CHECK mbps=100 set=20,1000 stations=16").unwrap()
        );
    }

    #[test]
    fn hit_miss_accounting() {
        let cache = ResultCache::new();
        let key = key_of("CHECK mbps=16 set=20,1000").unwrap();
        assert_eq!(cache.get(&key), None);
        cache.insert(key.clone(), "schedulable=true".into());
        assert_eq!(cache.get(&key).as_deref(), Some("schedulable=true"));
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.misses(), 1);
        assert_eq!(cache.entries(), 1);
    }

    #[test]
    fn capacity_is_enforced_per_shard() {
        // Capacity below SHARDS still leaves one slot per shard.
        let cache = ResultCache::with_capacity(1);
        assert_eq!(cache.capacity(), SHARDS);
        for i in 0..200 {
            let key = key_of(&format!("CHECK mbps=16 set=20,{}", 1000 + i)).unwrap();
            cache.insert(key, format!("body-{i}"));
        }
        assert!(cache.entries() <= SHARDS, "entries={}", cache.entries());
        assert!(cache.evictions() >= (200 - SHARDS) as u64);
    }

    #[test]
    fn lru_keeps_the_recently_used_entry() {
        let cache = ResultCache::with_capacity(SHARDS); // one entry per shard
                                                        // Find two keys that land in the same shard.
        let keys: Vec<CacheKey> = (0..400)
            .map(|i| key_of(&format!("CHECK mbps=16 set=20,{}", 1000 + i)).unwrap())
            .collect();
        let (a, rest) = keys.split_first().unwrap();
        let b = rest
            .iter()
            .find(|k| k.shard() == a.shard())
            .expect("some key shares a shard");
        cache.insert(a.clone(), "a".into());
        assert_eq!(cache.get(a).as_deref(), Some("a")); // refresh a
                                                        // With one slot per shard, inserting `b` must evict `a`.
        cache.insert(b.clone(), "b".into());
        assert_eq!(cache.get(a), None);
        assert_eq!(cache.get(b).as_deref(), Some("b"));
        assert_eq!(cache.evictions(), 1);
    }

    #[test]
    fn reinserting_existing_key_does_not_evict() {
        let cache = ResultCache::with_capacity(SHARDS);
        let key = key_of("CHECK mbps=16 set=20,1000").unwrap();
        cache.insert(key.clone(), "v1".into());
        cache.insert(key.clone(), "v2".into());
        assert_eq!(cache.evictions(), 0);
        assert_eq!(cache.get(&key).as_deref(), Some("v2"));
    }

    #[test]
    fn reset_counters_keeps_entries() {
        let cache = ResultCache::new();
        let key = key_of("CHECK mbps=16 set=20,1000").unwrap();
        assert_eq!(cache.get(&key), None);
        cache.insert(key.clone(), "schedulable=true".into());
        assert_eq!(cache.get(&key).as_deref(), Some("schedulable=true"));
        cache.reset_counters();
        assert_eq!(cache.hits(), 0);
        assert_eq!(cache.misses(), 0);
        assert_eq!(cache.evictions(), 0);
        // The warm entry survives: occupancy is a gauge, not a counter.
        assert_eq!(cache.entries(), 1);
        assert_eq!(cache.get(&key).as_deref(), Some("schedulable=true"));
        assert_eq!(cache.hits(), 1);
    }

    #[test]
    fn clear_reports_removed_count() {
        let cache = ResultCache::new();
        for i in 0..10 {
            let key = key_of(&format!("CHECK mbps=16 set=20,{}", 1000 + i)).unwrap();
            cache.insert(key, "x".into());
        }
        assert_eq!(cache.clear(), 10);
        assert_eq!(cache.entries(), 0);
        assert_eq!(cache.evictions(), 0, "clear is not an LRU eviction");
    }
}
