//! Simulation results.

use core::fmt;

use ringrt_des::stats::{DurationHistogram, DurationTally};
use ringrt_units::{SimDuration, SimTime};

/// Per-stream outcome counters.
#[derive(Debug, Clone, Default)]
pub struct StreamStats {
    /// Messages fully transmitted.
    pub completed: u64,
    /// Completed messages that finished after their deadline, plus messages
    /// still incomplete at their deadline when the run ended.
    pub deadline_misses: u64,
    /// Response times (arrival → completion) of completed messages.
    pub response: DurationTally,
    /// Log-bucketed response-time distribution, for percentile queries.
    pub response_histogram: DurationHistogram,
}

impl StreamStats {
    /// Worst observed response time, if any message completed.
    #[must_use]
    pub fn worst_response(&self) -> Option<SimDuration> {
        self.response.max()
    }

    /// An upper bound on the `q`-quantile of the response time (half-octave
    /// histogram resolution, clamped by the exact observed maximum), if any
    /// message completed.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < q ≤ 1`.
    #[must_use]
    pub fn response_quantile(&self, q: f64) -> Option<SimDuration> {
        let bucket_bound = self.response_histogram.quantile(q)?;
        let exact_max = self.response.max()?;
        Some(bucket_bound.min(exact_max))
    }
}

/// The outcome of one simulation run.
#[derive(Debug, Clone)]
pub struct SimReport {
    /// Protocol label ("IEEE 802.5", "Modified IEEE 802.5", "FDDI").
    pub protocol: &'static str,
    /// Simulated time span.
    pub simulated: SimDuration,
    /// Per-stream statistics, in station order.
    pub per_stream: Vec<StreamStats>,
    /// Observed token rotation times (at station 0).
    pub rotations: DurationTally,
    /// Total asynchronous frames transmitted.
    pub async_frames_sent: u64,
    /// Queueing delays (arrival → transmission start) of asynchronous
    /// frames.
    pub async_waits: DurationTally,
    /// Token losses injected (and recovered from) during the run.
    pub token_losses: u64,
    /// Fraction of the run the medium spent transmitting (payload plus
    /// overhead bits).
    pub medium_utilization: f64,
    /// Total events processed (progress/perf metric).
    pub events: u64,
    /// Captured protocol trace (empty unless enabled via
    /// [`SimConfig::with_trace`](crate::SimConfig::with_trace)).
    pub trace: Vec<crate::TraceEvent>,
    /// Trace events dropped once the capture bound was reached.
    pub trace_dropped: u64,
}

impl SimReport {
    /// Total completed messages across streams.
    #[must_use]
    pub fn completed(&self) -> u64 {
        self.per_stream.iter().map(|s| s.completed).sum()
    }

    /// Total deadline misses across streams.
    #[must_use]
    pub fn deadline_misses(&self) -> u64 {
        self.per_stream.iter().map(|s| s.deadline_misses).sum()
    }

    /// `true` if no stream missed a deadline.
    #[must_use]
    pub fn all_deadlines_met(&self) -> bool {
        self.deadline_misses() == 0
    }

    /// Worst observed token rotation time, if the token rotated at all.
    #[must_use]
    pub fn max_rotation(&self) -> Option<SimDuration> {
        self.rotations.max()
    }
}

impl fmt::Display for SimReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{} simulation over {}: {} messages completed, {} deadline misses, medium {:.1} % busy",
            self.protocol,
            self.simulated,
            self.completed(),
            self.deadline_misses(),
            self.medium_utilization * 100.0
        )?;
        if self.token_losses > 0 {
            writeln!(f, "  token losses recovered: {}", self.token_losses)?;
        }
        writeln!(f, "  token rotations: {}", self.rotations)?;
        for (i, s) in self.per_stream.iter().enumerate() {
            write!(
                f,
                "  S{}: {} done, {} missed",
                i + 1,
                s.completed,
                s.deadline_misses
            )?;
            if let Some(w) = s.worst_response() {
                write!(f, ", worst response {w}")?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

/// Internal helper tracking medium busy time and deadline accounting shared
/// by both simulators.
#[derive(Debug, Clone)]
pub(crate) struct MetricsCollector {
    pub per_stream: Vec<StreamStats>,
    pub rotations: DurationTally,
    pub async_frames_sent: u64,
    pub async_waits: DurationTally,
    pub token_losses: u64,
    pub busy: ringrt_des::stats::BusyTime,
    last_rotation_mark: Option<SimTime>,
}

impl MetricsCollector {
    pub fn new(streams: usize) -> Self {
        MetricsCollector {
            per_stream: vec![StreamStats::default(); streams],
            rotations: DurationTally::new(),
            async_frames_sent: 0,
            async_waits: DurationTally::new(),
            token_losses: 0,
            busy: ringrt_des::stats::BusyTime::new(),
            last_rotation_mark: None,
        }
    }

    /// Records the token passing its rotation reference point (station 0).
    pub fn mark_rotation(&mut self, now: SimTime) {
        if let Some(prev) = self.last_rotation_mark {
            self.rotations.push(now.duration_since(prev));
        }
        self.last_rotation_mark = Some(now);
    }

    /// Records a completed message for stream `i`.
    pub fn message_done(
        &mut self,
        stream: usize,
        arrival: SimTime,
        deadline: SimTime,
        now: SimTime,
    ) {
        let s = &mut self.per_stream[stream];
        s.completed += 1;
        let response = now.duration_since(arrival);
        s.response.push(response);
        s.response_histogram.push(response);
        if now > deadline {
            s.deadline_misses += 1;
        }
    }

    /// At end of run: messages still queued past their deadline count as
    /// misses.
    pub fn account_unfinished(&mut self, stream: usize, pending_past_deadline: u64) {
        self.per_stream[stream].deadline_misses += pending_past_deadline;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rotation_marks_produce_tally() {
        let mut m = MetricsCollector::new(1);
        m.mark_rotation(SimTime::from_picos(0));
        m.mark_rotation(SimTime::from_picos(100));
        m.mark_rotation(SimTime::from_picos(250));
        assert_eq!(m.rotations.count(), 2);
        assert_eq!(m.rotations.max(), Some(SimDuration::from_picos(150)));
    }

    #[test]
    fn message_done_classifies_misses() {
        let mut m = MetricsCollector::new(1);
        let t0 = SimTime::ZERO;
        let dl = SimTime::from_picos(100);
        m.message_done(0, t0, dl, SimTime::from_picos(90)); // on time
        m.message_done(0, t0, dl, SimTime::from_picos(150)); // late
        assert_eq!(m.per_stream[0].completed, 2);
        assert_eq!(m.per_stream[0].deadline_misses, 1);
        // The histogram sees the same samples as the tally.
        assert_eq!(m.per_stream[0].response_histogram.count(), 2);
        let p100 = m.per_stream[0].response_quantile(1.0).unwrap();
        assert!(p100 >= SimDuration::from_picos(150));
        assert!(m.per_stream[0].response_quantile(0.01).unwrap() < p100 * 2);
        m.account_unfinished(0, 3);
        assert_eq!(m.per_stream[0].deadline_misses, 4);
    }

    #[test]
    fn report_aggregates() {
        let mut m = MetricsCollector::new(2);
        m.message_done(
            0,
            SimTime::ZERO,
            SimTime::from_picos(10),
            SimTime::from_picos(5),
        );
        m.message_done(
            1,
            SimTime::ZERO,
            SimTime::from_picos(10),
            SimTime::from_picos(50),
        );
        let report = SimReport {
            protocol: "FDDI",
            simulated: SimDuration::from_millis(1),
            per_stream: m.per_stream.clone(),
            rotations: m.rotations,
            async_frames_sent: 0,
            async_waits: DurationTally::new(),
            token_losses: 0,
            medium_utilization: 0.5,
            events: 42,
            trace: Vec::new(),
            trace_dropped: 0,
        };
        assert_eq!(report.completed(), 2);
        assert_eq!(report.deadline_misses(), 1);
        assert!(!report.all_deadlines_met());
        assert!(report.max_rotation().is_none());
        let text = report.to_string();
        assert!(text.contains("FDDI"));
        assert!(text.contains("S1"));
        assert!(text.contains("worst response"));
    }
}
