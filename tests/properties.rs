//! Cross-crate property-based tests of the schedulability criteria.

use proptest::prelude::*;

use ringrt::analysis::pdp::{PdpAnalyzer, PdpVariant};
use ringrt::analysis::ttp::TtpAnalyzer;
use ringrt::analysis::SchedulabilityTest;
use ringrt::breakdown::SaturationSearch;
use ringrt::model::{FrameFormat, MessageSet, RingConfig, SyncStream};
use ringrt::units::{Bandwidth, Bits, Seconds};

/// Strategy: a message set of 1–8 streams with periods 5–500 ms and
/// payloads 100–200 000 bits.
fn arb_set() -> impl Strategy<Value = MessageSet> {
    prop::collection::vec((5.0f64..500.0, 100u64..200_000), 1..8).prop_map(|specs| {
        MessageSet::new(
            specs
                .into_iter()
                .map(|(p_ms, bits)| SyncStream::new(Seconds::from_millis(p_ms), Bits::new(bits)))
                .collect(),
        )
        .expect("generated parameters are valid")
    })
}

fn pdp(set_len: usize, mbps: f64, variant: PdpVariant) -> PdpAnalyzer {
    PdpAnalyzer::new(
        RingConfig::ieee_802_5(set_len, Bandwidth::from_mbps(mbps)),
        FrameFormat::paper_default(),
        variant,
    )
}

fn ttp(set_len: usize, mbps: f64) -> TtpAnalyzer {
    TtpAnalyzer::with_defaults(RingConfig::fddi(set_len, Bandwidth::from_mbps(mbps)))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Shrinking every message keeps a schedulable set schedulable
    /// (monotonicity both protocols' criteria rely on).
    #[test]
    fn schedulability_monotone_in_load(set in arb_set(), shrink in 0.1f64..1.0) {
        let smaller = set.with_scaled_lengths(shrink);
        for mbps in [4.0, 100.0] {
            let a = pdp(set.len(), mbps, PdpVariant::Standard);
            if a.is_schedulable(&set) {
                prop_assert!(a.is_schedulable(&smaller), "PDP broke at {mbps} Mbps");
            }
            let t = ttp(set.len(), mbps);
            if t.is_schedulable(&set) {
                prop_assert!(t.is_schedulable(&smaller), "TTP broke at {mbps} Mbps");
            }
        }
    }

    /// The modified 802.5 variant dominates the standard one: anything the
    /// standard guarantees, the modified guarantees too.
    #[test]
    fn modified_dominates_standard(set in arb_set()) {
        for mbps in [1.0, 16.0, 100.0] {
            let std = pdp(set.len(), mbps, PdpVariant::Standard);
            let modv = pdp(set.len(), mbps, PdpVariant::Modified);
            if std.is_schedulable(&set) {
                prop_assert!(modv.is_schedulable(&set), "dominance violated at {mbps} Mbps");
            }
        }
    }

    /// The two exact forms of Theorem 4.1 (response-time analysis and the
    /// scheduling-point test) always agree.
    #[test]
    fn rta_agrees_with_scheduling_points(set in arb_set(), scale in 0.2f64..4.0) {
        let scaled = set.with_scaled_lengths(scale);
        let a = pdp(set.len(), 16.0, PdpVariant::Modified);
        prop_assert_eq!(a.is_schedulable(&scaled), a.is_schedulable_by_points(&scaled));
    }

    /// `analyze` and `satisfies_theorem_5_1` agree for the local scheme.
    #[test]
    fn ttp_report_agrees_with_theorem(set in arb_set(), scale in 0.2f64..4.0) {
        let scaled = set.with_scaled_lengths(scale);
        let t = ttp(set.len(), 100.0);
        prop_assert_eq!(t.is_schedulable(&scaled), t.satisfies_theorem_5_1(&scaled));
    }

    /// The saturation search lands on the boundary: schedulable at the
    /// result, unschedulable a tolerance-step above.
    #[test]
    fn saturation_is_tight(set in arb_set()) {
        let bw = Bandwidth::from_mbps(100.0);
        let t = ttp(set.len(), 100.0);
        let search = SaturationSearch::with_tolerance(1e-4);
        if let Some(sat) = search.saturate(&t, &set, bw) {
            prop_assert!(t.is_schedulable(&sat.set));
            let above = sat.set.with_scaled_lengths(1.0 + 20.0 * 1e-4);
            prop_assert!(!t.is_schedulable(&above), "boundary not tight (U = {})", sat.utilization);
        }
    }

    /// Raising the bandwidth never hurts the timed token protocol (its
    /// overheads shrink or stay constant); this is the monotonicity behind
    /// the rising FDDI curve in Figure 1.
    #[test]
    fn ttp_improves_with_bandwidth(set in arb_set()) {
        let t_lo = ttp(set.len(), 50.0);
        let t_hi = ttp(set.len(), 500.0);
        if t_lo.is_schedulable(&set) {
            prop_assert!(t_hi.is_schedulable(&set));
        }
    }

    /// Adding a brand-new stream never makes a set *more* schedulable under
    /// TTP: if the grown set passes, the original must pass.
    #[test]
    fn ttp_adding_a_stream_never_helps(set in arb_set(), p_ms in 5.0f64..500.0, bits in 100u64..100_000) {
        let mut streams: Vec<SyncStream> = set.iter().copied().collect();
        streams.push(SyncStream::new(Seconds::from_millis(p_ms), Bits::new(bits)));
        let grown = MessageSet::new(streams).unwrap();
        // Same ring for both (station count fixed at the grown size).
        let t = ttp(grown.len(), 100.0);
        if t.is_schedulable(&grown) {
            prop_assert!(t.is_schedulable(&set));
        }
    }

    /// Utilization of the saturated set never exceeds 1 (no criterion may
    /// accept more than the wire can carry).
    #[test]
    fn breakdown_utilization_at_most_one(set in arb_set()) {
        let bw = Bandwidth::from_mbps(16.0);
        let search = SaturationSearch::with_tolerance(1e-3);
        for sat in [
            search.saturate(&pdp(set.len(), 16.0, PdpVariant::Modified), &set, bw),
            search.saturate(&ttp(set.len(), 16.0), &set, bw),
        ].into_iter().flatten() {
            prop_assert!(sat.utilization <= 1.0 + 1e-6, "U = {}", sat.utilization);
            prop_assert!(sat.utilization > 0.0);
        }
    }
}
