//! Property: parallel ABU estimation is bit-identical to the serial path.
//!
//! The estimator's contract (see `BreakdownEstimator::estimate_parallel`)
//! is that the per-sample SplitMix64 seed stream — not the thread
//! schedule — defines the estimate, so any pool width must reproduce the
//! serial result byte for byte. This is what makes ABU responses
//! cacheable in `ringrt-service` regardless of `RINGRT_THREADS`. Randomize
//! over master seeds, population sizes, and sample counts, and compare the
//! full `BreakdownEstimate` (mean, CI, extremes, infeasible count) across
//! pool widths 1, 2, 4, and 8 — including a pool with forced work
//! stealing on every round, the most schedule-hostile configuration the
//! sharded pool supports.

use proptest::prelude::*;

use rand::rngs::StdRng;
use rand::SeedableRng;
use ringrt_breakdown::{BreakdownEstimator, SaturationSearch};
use ringrt_core::pdp::{PdpAnalyzer, PdpVariant};
use ringrt_core::ttp::TtpAnalyzer;
use ringrt_exec::Pool;
use ringrt_model::{FrameFormat, RingConfig};
use ringrt_units::Bandwidth;
use ringrt_workload::MessageSetGenerator;

proptest! {
    // Each case runs 4 × (samples) saturation searches; keep the case
    // count modest so the suite stays fast.
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// TTP: serial `estimate` == `estimate_parallel` at widths 1, 2, 8.
    #[test]
    fn ttp_parallel_estimate_matches_serial_bit_for_bit(
        seed in any::<u64>(),
        stations in 4usize..16,
        samples in 2usize..8,
        chunk in 1usize..5,
    ) {
        let ring = RingConfig::fddi(stations, Bandwidth::from_mbps(100.0));
        let analyzer = TtpAnalyzer::with_defaults(ring);
        let estimator =
            BreakdownEstimator::new(MessageSetGenerator::paper_population(stations), samples)
                .with_search(SaturationSearch::with_tolerance(1e-3));
        let serial =
            estimator.estimate(&analyzer, ring.bandwidth(), &mut StdRng::seed_from_u64(seed));
        for threads in [1, 2, 4, 8] {
            // Plain pool at the randomized chunk size, then the same pool
            // with a steal forced on every odd worker's every round.
            let pools = [
                Pool::new(threads).with_chunk_size(chunk),
                Pool::new(threads)
                    .with_chunk_size(chunk)
                    .with_steal_injection(|worker, _round| worker % 2 == 1),
            ];
            for pool in &pools {
                let pooled =
                    estimator.estimate_parallel(&analyzer, ring.bandwidth(), seed, pool);
                prop_assert_eq!(
                    &serial, &pooled,
                    "seed {} stations {} samples {} threads {} chunk {}",
                    seed, stations, samples, threads, chunk
                );
            }
        }
    }

    /// PDP (modified): same bit-identity law on the other protocol family.
    #[test]
    fn pdp_parallel_estimate_matches_serial_bit_for_bit(
        seed in any::<u64>(),
        stations in 4usize..12,
        samples in 2usize..6,
        chunk in 1usize..5,
    ) {
        let ring = RingConfig::ieee_802_5(stations, Bandwidth::from_mbps(16.0));
        let analyzer =
            PdpAnalyzer::new(ring, FrameFormat::paper_default(), PdpVariant::Modified);
        let estimator =
            BreakdownEstimator::new(MessageSetGenerator::paper_population(stations), samples)
                .with_search(SaturationSearch::with_tolerance(1e-3));
        let serial =
            estimator.estimate(&analyzer, ring.bandwidth(), &mut StdRng::seed_from_u64(seed));
        for threads in [1, 2, 4, 8] {
            let pools = [
                Pool::new(threads).with_chunk_size(chunk),
                Pool::new(threads)
                    .with_chunk_size(chunk)
                    .with_steal_injection(|worker, _round| worker % 2 == 1),
            ];
            for pool in &pools {
                let pooled =
                    estimator.estimate_parallel(&analyzer, ring.bandwidth(), seed, pool);
                prop_assert_eq!(
                    &serial, &pooled,
                    "seed {} stations {} samples {} threads {} chunk {}",
                    seed, stations, samples, threads, chunk
                );
            }
        }
    }
}
