//! The IEEE 802 CRC-32 frame check sequence.
//!
//! Both IEEE 802.5 and FDDI protect frames with the same 32-bit cyclic
//! redundancy check (polynomial `0x04C11DB7`, reflected, initial value
//! `0xFFFF_FFFF`, final XOR `0xFFFF_FFFF`) — the classic "CRC-32" also
//! used by Ethernet and zlib.

/// The reflected CRC-32 polynomial (bit-reversed `0x04C11DB7`).
const POLY_REFLECTED: u32 = 0xEDB8_8320;

/// A 256-entry lookup table computed at compile time.
const TABLE: [u32; 256] = build_table();

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ POLY_REFLECTED
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

/// Computes the IEEE CRC-32 of `data`.
///
/// # Examples
///
/// ```
/// use ringrt_frames::crc::crc32;
///
/// // The canonical check value.
/// assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
/// ```
#[must_use]
pub fn crc32(data: &[u8]) -> u32 {
    let mut state = Crc32::new();
    state.update(data);
    state.finish()
}

/// Incremental CRC-32 computation.
///
/// # Examples
///
/// ```
/// use ringrt_frames::crc::{crc32, Crc32};
///
/// let mut crc = Crc32::new();
/// crc.update(b"1234");
/// crc.update(b"56789");
/// assert_eq!(crc.finish(), crc32(b"123456789"));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Crc32 {
    state: u32,
}

impl Crc32 {
    /// Starts a fresh computation.
    #[must_use]
    pub fn new() -> Self {
        Crc32 { state: 0xFFFF_FFFF }
    }

    /// Feeds more bytes.
    pub fn update(&mut self, data: &[u8]) {
        for &byte in data {
            let idx = ((self.state ^ byte as u32) & 0xFF) as usize;
            self.state = (self.state >> 8) ^ TABLE[idx];
        }
    }

    /// Returns the final checksum (the accumulator may keep being fed
    /// afterwards, continuing the same message).
    #[must_use]
    pub fn finish(&self) -> u32 {
        self.state ^ 0xFFFF_FFFF
    }
}

impl Default for Crc32 {
    fn default() -> Self {
        Crc32::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Standard CRC-32/ISO-HDLC test vectors.
        assert_eq!(crc32(b""), 0x0000_0000);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
        assert_eq!(crc32(b"abc"), 0x3524_41C2);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn incremental_matches_oneshot() {
        let data: Vec<u8> = (0..=255).collect();
        for split in [0usize, 1, 7, 128, 255, 256] {
            let mut crc = Crc32::new();
            crc.update(&data[..split]);
            crc.update(&data[split..]);
            assert_eq!(crc.finish(), crc32(&data), "split at {split}");
        }
    }

    #[test]
    fn detects_single_bit_flips() {
        let mut data = b"synchronous message payload".to_vec();
        let original = crc32(&data);
        for byte in 0..data.len() {
            for bit in 0..8 {
                data[byte] ^= 1 << bit;
                assert_ne!(crc32(&data), original, "flip at {byte}:{bit} undetected");
                data[byte] ^= 1 << bit;
            }
        }
    }

    #[test]
    fn default_is_fresh() {
        assert_eq!(Crc32::default().finish(), crc32(b""));
    }
}
